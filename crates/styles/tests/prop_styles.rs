//! Randomized tests for the style taxonomy.
//!
//! Deterministic seeded sampling (splitmix64) instead of a property-testing
//! framework: the build container resolves no external crates, and fixed
//! seeds make failures reproducible without a shrinker.

use indigo_styles::{
    enumerate, Algorithm, AtomicKind, CppSchedule, CpuReduction, Determinism, Direction, Drive,
    Flow, GpuReduction, Granularity, Model, OmpSchedule, Persistence, StyleConfig, Update,
};
use std::collections::{HashMap, HashSet};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        ((self.next() as u128 * bound as u128) >> 64) as usize
    }

    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[self.below(xs.len())]
    }

    fn option<T: Copy>(&mut self, xs: &[T]) -> Option<T> {
        if self.next() & 1 == 0 {
            None
        } else {
            Some(self.pick(xs))
        }
    }
}

/// An arbitrary (mostly invalid) style configuration.
fn random_config(rng: &mut Rng) -> StyleConfig {
    StyleConfig {
        algorithm: rng.pick(&Algorithm::ALL),
        model: rng.pick(&Model::ALL),
        direction: rng.pick(&Direction::ALL),
        drive: rng.pick(&Drive::ALL),
        flow: rng.option(&Flow::ALL),
        update: rng.pick(&Update::ALL),
        determinism: rng.pick(&Determinism::ALL),
        persistence: rng.option(&Persistence::ALL),
        granularity: rng.option(&Granularity::ALL),
        atomic: rng.option(&AtomicKind::ALL),
        gpu_reduction: rng.option(&GpuReduction::ALL),
        cpu_reduction: rng.option(&CpuReduction::ALL),
        omp_schedule: rng.option(&OmpSchedule::ALL),
        cpp_schedule: rng.option(&CppSchedule::ALL),
    }
}

/// `check()` and enumeration membership agree: a config is valid if and only
/// if the enumerator produces it. Random configs exercise the invalid side;
/// the full suite exercises the valid side.
#[test]
fn check_agrees_with_enumeration() {
    let mut by_pair: HashMap<(Algorithm, Model), HashSet<StyleConfig>> = HashMap::new();
    let mut rng = Rng::new(0x57_1e5);
    for _ in 0..512 {
        let cfg = random_config(&mut rng);
        let valid = by_pair
            .entry((cfg.algorithm, cfg.model))
            .or_insert_with(|| {
                enumerate::variants(cfg.algorithm, cfg.model)
                    .into_iter()
                    .collect()
            })
            .contains(&cfg);
        assert_eq!(
            cfg.check().is_ok(),
            valid,
            "{} check={:?}",
            cfg.name(),
            cfg.check()
        );
    }
    for cfg in enumerate::full_suite() {
        assert!(
            cfg.check().is_ok(),
            "enumerated config fails check: {}",
            cfg.name()
        );
    }
}

/// Names round-trip uniquely across the entire valid suite: name equality
/// implies config equality.
#[test]
fn names_injective_for_valid_configs() {
    let mut seen: HashMap<String, StyleConfig> = HashMap::new();
    for cfg in enumerate::full_suite() {
        if let Some(prev) = seen.insert(cfg.name(), cfg) {
            assert_eq!(prev, cfg, "two configs share the name {}", cfg.name());
        }
    }
}

/// peer_key(dim) equality means the configs differ at most in `dim` —
/// checked over random (mostly invalid) pairs and random suite pairs, where
/// equal keys actually occur.
#[test]
fn peer_key_erases_exactly_one_dimension() {
    let suite = enumerate::full_suite();
    let mut rng = Rng::new(0xbeef);
    for round in 0..512 {
        let (a, b) = if round % 2 == 0 {
            (random_config(&mut rng), random_config(&mut rng))
        } else {
            (suite[rng.below(suite.len())], suite[rng.below(suite.len())])
        };
        for dim in StyleConfig::DIMENSIONS {
            if a.peer_key(dim) == b.peer_key(dim) {
                for other in StyleConfig::DIMENSIONS {
                    if other != dim {
                        assert_eq!(
                            a.dimension_label(other),
                            b.dimension_label(other),
                            "peer_key({dim}) matched but {other} differs"
                        );
                    }
                }
            }
        }
    }
}

/// Every dimension label reported by a valid config parses back through the
/// filter language and re-selects the config — over the whole suite.
#[test]
fn labels_round_trip_through_filter() {
    for cfg in enumerate::full_suite() {
        for dim in StyleConfig::DIMENSIONS {
            if let Some(label) = cfg.dimension_label(dim) {
                let f =
                    indigo_styles::filter::VariantFilter::parse(&format!("{dim}={label}")).unwrap();
                assert!(f.matches(&cfg), "{dim}={label} must match {}", cfg.name());
            }
        }
    }
}
