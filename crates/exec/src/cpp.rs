//! C++11-threads-analog execution: explicit thread teams with blocked or
//! cyclic loop distribution (§2.12, Listings 13a/13b).
//!
//! The paper's C++ codes create `std::thread`s per parallel kernel and join
//! them — there is no runtime scheduler, so the *programmer* chooses the
//! iteration-to-thread mapping. [`CppThreads`] reproduces that: every
//! [`CppThreads::parallel_for`] spawns a fresh team (scoped threads) and the
//! [`CppSched`] selects the distribution.

use crate::omp::CANCEL_STRIDE;
use indigo_cancel::CancelToken;

/// Iteration-to-thread mapping for the C++ model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CppSched {
    /// Contiguous chunk per thread (Listing 13a).
    Blocked,
    /// Round-robin: thread `t` takes `t, t + T, t + 2T, …` (Listing 13b).
    Cyclic,
}

/// A C++-threads-style execution context (just a thread count; teams are
/// spawned per kernel, like `std::thread` usage in the paper's codes).
#[derive(Clone, Copy, Debug)]
pub struct CppThreads {
    threads: usize,
}

impl CppThreads {
    /// Context with `threads >= 1` threads per kernel.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1);
        CppThreads { threads }
    }

    /// Team size.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `body(i, tid)` for every `i` in `0..n`, distributed per `sched`.
    /// Joins the team before returning.
    pub fn parallel_for<F>(&self, n: usize, sched: CppSched, body: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        self.parallel_for_with(n, sched, None, body);
    }

    /// [`CppThreads::parallel_for`] with a cooperative [`CancelToken`]: team
    /// members poll it every `CANCEL_STRIDE` iterations and drain (return
    /// early, no unwind) once it fires; after the join, the calling thread
    /// raises the `Cancelled` payload. Mirrors `OmpPool::parallel_for_with`.
    pub fn parallel_for_with<F>(
        &self,
        n: usize,
        sched: CppSched,
        cancel: Option<&CancelToken>,
        body: F,
    ) where
        F: Fn(usize, usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let threads = self.threads.min(n.max(1));
        let body = &body;
        let fired = &|| cancel.is_some_and(CancelToken::is_fired);
        std::thread::scope(|scope| {
            for tid in 0..threads {
                scope.spawn(move || match sched {
                    CppSched::Blocked => {
                        let beg = tid * n / threads;
                        let end = (tid + 1) * n / threads;
                        for i in beg..end {
                            if (i - beg).is_multiple_of(CANCEL_STRIDE) && fired() {
                                return;
                            }
                            body(i, tid);
                        }
                    }
                    CppSched::Cyclic => {
                        let mut i = tid;
                        let mut step = 0usize;
                        while i < n {
                            if step.is_multiple_of(CANCEL_STRIDE) && fired() {
                                return;
                            }
                            body(i, tid);
                            i += threads;
                            step += 1;
                        }
                    }
                });
            }
        });
        // the scope join is the region barrier: conflicts cannot span it
        crate::sanitize::region_flush();
        if let Some(token) = cancel {
            token.checkpoint();
        }
    }

    /// Spawns the team once with `f(tid)` — for kernels that manage their own
    /// loop structure (worklist draining).
    pub fn parallel_region<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let f = &f;
        std::thread::scope(|scope| {
            for tid in 0..self.threads {
                scope.spawn(move || f(tid));
            }
        });
        crate::sanitize::region_flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn blocked_covers_all() {
        let cpp = CppThreads::new(4);
        let hits: Vec<AtomicUsize> = (0..103).map(|_| AtomicUsize::new(0)).collect();
        cpp.parallel_for(103, CppSched::Blocked, |i, _| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn cyclic_covers_all() {
        let cpp = CppThreads::new(4);
        let hits: Vec<AtomicUsize> = (0..103).map(|_| AtomicUsize::new(0)).collect();
        cpp.parallel_for(103, CppSched::Cyclic, |i, _| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn cyclic_assignment_is_round_robin() {
        let cpp = CppThreads::new(3);
        let owner: Vec<AtomicUsize> = (0..9).map(|_| AtomicUsize::new(99)).collect();
        cpp.parallel_for(9, CppSched::Cyclic, |i, tid| {
            owner[i].store(tid, Ordering::Relaxed);
        });
        let owners: Vec<usize> = owner.iter().map(|o| o.load(Ordering::Relaxed)).collect();
        assert_eq!(owners, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn more_threads_than_items() {
        let cpp = CppThreads::new(16);
        let count = AtomicUsize::new(0);
        cpp.parallel_for(3, CppSched::Blocked, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn zero_items_noop() {
        let cpp = CppThreads::new(2);
        cpp.parallel_for(0, CppSched::Cyclic, |_, _| panic!("must not run"));
    }

    #[test]
    fn fired_token_drains_team_and_raises_on_caller() {
        let cpp = CppThreads::new(2);
        let token = CancelToken::new();
        token.fire("over budget");
        for sched in [CppSched::Blocked, CppSched::Cyclic] {
            let done = AtomicUsize::new(0);
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                cpp.parallel_for_with(50_000, sched, Some(&token), |_, _| {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }))
            .unwrap_err();
            assert!(indigo_cancel::as_cancelled(err.as_ref()).is_some());
            assert!(done.load(Ordering::Relaxed) < 50_000, "{sched:?}");
        }
        // fresh teams per kernel: later calls are unaffected
        let count = AtomicUsize::new(0);
        cpp.parallel_for(64, CppSched::Blocked, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn region_runs_each_tid() {
        let cpp = CppThreads::new(6);
        let mask = AtomicUsize::new(0);
        cpp.parallel_region(|tid| {
            mask.fetch_or(1 << tid, Ordering::Relaxed);
        });
        assert_eq!(mask.load(Ordering::Relaxed), 0b111111);
    }
}
