//! Server configuration (DESIGN.md §7.8).

use crate::breaker::BreakerConfig;
use crate::retry::RetryPolicy;
use indigo_graph::gen::Scale;
use std::path::PathBuf;
use std::time::Duration;

/// Everything the server needs to start. `Default` is tuned for tests and
/// the chaos harness: loopback, ephemeral port, tiny graphs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it are shed (429).
    pub queue: usize,
    /// `--jobs` handed to `run_cells` per request.
    pub jobs: usize,
    /// Deadline for requests that don't pass `deadline_ms`.
    pub default_deadline: Duration,
    /// Largest accepted per-request deadline (larger asks are clamped).
    pub max_deadline: Duration,
    /// Scale for requests that don't pass `scale`.
    pub default_scale: Scale,
    /// Repetitions per cell.
    pub reps: usize,
    /// Retry policy for transiently failed cells.
    pub retry: RetryPolicy,
    /// Per-graph-shard circuit breaker tuning.
    pub breaker: BreakerConfig,
    /// Journal path for crash-only persistence (`None` = in-memory only).
    pub journal: Option<PathBuf>,
    /// Honor `fault=`/`fault_attempts=` query parameters (chaos harness
    /// only — a production server must never let clients inject faults).
    pub allow_fault_param: bool,
    /// Largest number of submissions the batch former merges into one
    /// `run_cells` invocation (`0` disables batching: every claimer runs
    /// its own plan inline).
    pub batch: usize,
    /// Longest the batch former holds an open batch waiting for more
    /// submissions; the window closes early when the queue is empty.
    pub batch_window: Duration,
    /// Keep connections open across requests (HTTP/1.1 keep-alive).
    pub keep_alive: bool,
    /// Use the epoll readiness reactor on Linux (falls back to the
    /// blocking accept path when unsupported or disabled).
    pub reactor: bool,
    /// How long a connection may dribble in its request head before the
    /// reactor reaps it (slow-loris bound).
    pub header_timeout: Duration,
    /// Directory the flight recorder dumps `FLIGHT_*.jsonl` files into on
    /// any 5xx response (`None` disables dumping; the in-memory ring and
    /// `/debug/flightrec` stay live either way).
    pub flightrec_dir: Option<PathBuf>,
    /// Latency SLO threshold, µs — `/metrics` reports the rolling-window
    /// violation ratio and burn rate against it.
    pub slo_micros: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue: 16,
            jobs: 1,
            default_deadline: Duration::from_secs(2),
            max_deadline: Duration::from_secs(60),
            default_scale: Scale::Tiny,
            reps: 1,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            journal: None,
            allow_fault_param: false,
            batch: 8,
            batch_window: Duration::from_millis(1),
            keep_alive: true,
            reactor: true,
            header_timeout: Duration::from_secs(10),
            flightrec_dir: None,
            slo_micros: 250_000,
        }
    }
}

/// Lowercase scale label used in queries and responses.
pub fn scale_label(s: Scale) -> &'static str {
    match s {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Default => "default",
        Scale::Large => "large",
    }
}

/// Parses a scale label.
pub fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "default" => Ok(Scale::Default),
        "large" => Ok(Scale::Large),
        other => Err(format!(
            "unknown scale `{other}` (tiny|small|default|large)"
        )),
    }
}
