//! Tier-2: the simulator's block execution path performs zero heap
//! allocations in steady state (DESIGN.md §7.4).
//!
//! A counting global allocator observes warmed-up launches: after the
//! first launch has grown the per-thread `StepTable`s, sized the outcome
//! arena, and built the SM merge heap, every subsequent launch must run
//! allocation-free. This pins the tentpole property of the hot-path
//! rework — per-launch `Vec`/`StepTable::new` churn cannot silently come
//! back without failing this test.
//!
//! Everything runs inside ONE `#[test]` function: the allocation counter
//! is process-global, and Rust's test harness runs separate tests on
//! separate threads, which would make the counts racy. Even with one
//! test, libtest's own harness thread occasionally allocates while a
//! window is open, so each window is measured as a minimum over a few
//! attempts — a real per-launch regression allocates on every attempt,
//! ambient harness noise does not.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use indigo_core::GraphInput;
use indigo_gpusim::{rtx3090, Assign, BufKind, GpuBuf, ReduceStyle, Sim, WARP_SIZE};
use indigo_graph::gen;

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(l)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(p, l, n)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(l)
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

/// Minimum allocation delta over up to `attempts` runs of `body`,
/// stopping early once an attempt lands within `budget`. Retrying
/// filters out allocations from libtest's harness thread (the counter
/// is process-global); a genuine hot-path regression allocates on
/// every attempt and is still caught.
fn min_delta(attempts: usize, budget: u64, mut body: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..attempts {
        let before = allocs();
        body();
        best = best.min(allocs() - before);
        if best <= budget {
            break;
        }
    }
    best
}

#[test]
fn steady_state_launches_do_not_allocate() {
    const N: usize = 1 << 12;
    let device = rtx3090();
    let src = GpuBuf::new(N, 7);
    let dst = GpuBuf::new(N, 0);

    // --- serial fast path (ThreadPerItem, no reduce, no epilogue) ---
    let mut sim = Sim::new(device);
    for _ in 0..2 {
        sim.launch(N, Assign::ThreadPerItem, false, |ctx, i| {
            let v = ctx.ld(&src, i);
            ctx.st(&dst, i, v + 1);
        });
    }
    let delta = min_delta(5, 0, || {
        for _ in 0..8 {
            sim.launch(N, Assign::ThreadPerItem, false, |ctx, i| {
                let v = ctx.ld(&src, i);
                ctx.st(&dst, i, v + 1);
            });
        }
    });
    assert_eq!(delta, 0, "serial ThreadPerItem steady state allocated");

    // --- generic block path (WarpPerItem + shuffle reduction) ---
    let items = N / WARP_SIZE;
    for _ in 0..2 {
        sim.launch_reduce_u64(
            items,
            Assign::WarpPerItem,
            false,
            ReduceStyle::ReductionAdd,
            BufKind::Atomic,
            |ctx, item| {
                let v = ctx.ld(&src, item * WARP_SIZE + ctx.lane());
                ctx.reduce_add_u64(u64::from(v));
            },
        );
    }
    let delta = min_delta(5, 0, || {
        for _ in 0..8 {
            sim.launch_reduce_u64(
                items,
                Assign::WarpPerItem,
                false,
                ReduceStyle::ReductionAdd,
                BufKind::Atomic,
                |ctx, item| {
                    let v = ctx.ld(&src, item * WARP_SIZE + ctx.lane());
                    ctx.reduce_add_u64(u64::from(v));
                },
            );
        }
    });
    assert_eq!(delta, 0, "WarpPerItem reduce steady state allocated");

    // --- pooled deterministic path (parked workers + slot arena) ---
    // A worker's private StepTable grows the first time that worker
    // actually wins a block, and thread scheduling decides when that
    // happens — so the assertion allows that one-time growth (a few
    // reallocs) but nothing proportional to the launch count.
    let mut sim = Sim::new(device);
    sim.set_workers(2);
    for _ in 0..2 {
        sim.launch_det(N, Assign::ThreadPerItem, false, |ctx, i| {
            let v = ctx.ld(&src, i);
            ctx.st(&dst, i, v * 2);
        });
    }
    const POOLED_LAUNCHES: u64 = 32;
    let pooled = min_delta(5, 4, || {
        for _ in 0..POOLED_LAUNCHES {
            sim.launch_det(N, Assign::ThreadPerItem, false, |ctx, i| {
                let v = ctx.ld(&src, i);
                ctx.st(&dst, i, v * 2);
            });
        }
    });
    assert!(
        pooled <= 4,
        "pooled steady state allocated {pooled} times over {POOLED_LAUNCHES} launches \
         (expected at most one-time worker table growth)"
    );

    // --- the six tuned CPU baselines are steady-state alloc-free too ---
    // (DESIGN.md §7.7.) All traversal scratch is leased capacity-retaining
    // state and the output buffers below are caller-owned, so after the two
    // warm-up calls every `_into` call must allocate nothing. A weighted
    // G(n, p) exercises all kernels including delta-stepping's buckets.
    {
        let input = GraphInput::new(gen::gnp(600, 0.02, 42));
        const THREADS: usize = 2;
        let mut levels = Vec::new();
        let mut dists = Vec::new();
        let mut labels = Vec::new();
        let mut members = Vec::new();
        let mut ranks = Vec::new();
        type Kernel<'a> = Box<dyn FnMut() + 'a>;
        let mut kernels: [(&str, Kernel); 6] = [
            (
                "bfs",
                Box::new(|| {
                    indigo_baselines::bfs::cpu_into(&input, THREADS, 0, &mut levels);
                }),
            ),
            (
                "sssp",
                Box::new(|| {
                    indigo_baselines::sssp::cpu_into(&input, THREADS, 0, &mut dists);
                }),
            ),
            (
                "cc",
                Box::new(|| {
                    indigo_baselines::cc::cpu_into(&input, THREADS, &mut labels);
                }),
            ),
            (
                "mis",
                Box::new(|| {
                    indigo_baselines::mis::cpu_into(&input, THREADS, &mut members);
                }),
            ),
            (
                "pr",
                Box::new(|| {
                    indigo_baselines::pr::cpu_into(&input, THREADS, &mut ranks);
                }),
            ),
            (
                "tc",
                Box::new(|| {
                    indigo_baselines::tc::cpu(&input, THREADS);
                }),
            ),
        ];
        for (name, kernel) in kernels.iter_mut() {
            kernel();
            kernel();
            let delta = min_delta(5, 0, kernel);
            assert_eq!(delta, 0, "CPU baseline `{name}` steady state allocated");
        }
    }

    // --- warmed feature extraction is allocation-free too ---
    // (DESIGN.md §7.11.) The style advisor recomputes graph features on
    // the serving path, so `GraphStats::compute_with` must run out of the
    // leased `StatsScratch` once warm — `bfs_far`'s per-call buffers were
    // exactly the regression this window pins.
    {
        let g = gen::gnp(600, 0.02, 42);
        let mut scratch = indigo_graph::stats::StatsScratch::default();
        for _ in 0..2 {
            let _ = indigo_graph::stats::GraphStats::compute_with(&g, &mut scratch);
        }
        let delta = min_delta(5, 0, || {
            for _ in 0..4 {
                let _ = indigo_graph::stats::GraphStats::compute_with(&g, &mut scratch);
            }
        });
        assert_eq!(delta, 0, "warmed feature extraction allocated");
    }

    // --- telemetry recording is allocation-free too (DESIGN.md §7.5) ---
    // Counters and histograms are pre-registered static atomics, so the
    // instrumented hot paths above stay on the zero-alloc budget whether
    // the `telemetry` feature is on (CI runs both ways) or off. Snapshots
    // are plain arrays, also alloc-free.
    let mut snap = indigo_obs::counters_snapshot();
    let mut hists = indigo_obs::hists_snapshot();
    let delta = min_delta(5, 0, || {
        for i in 0..1_000u64 {
            indigo_obs::Counter::SimLaunches.incr();
            indigo_obs::Hist::LaunchCycles.record(i);
        }
        snap = indigo_obs::counters_snapshot();
        hists = indigo_obs::hists_snapshot();
    });
    assert_eq!(delta, 0, "telemetry recording allocated");
    if indigo_obs::enabled() {
        assert!(
            snap.get(indigo_obs::Counter::SimLaunches) >= 1_000,
            "telemetry build lost counter increments"
        );
        assert!(
            snap.get(indigo_obs::Counter::SimCycles) > 0,
            "the launches above recorded no cycles"
        );
        assert!(hists.count(indigo_obs::Hist::LaunchCycles) >= 1_000);
    } else {
        assert!(
            snap.is_zero(),
            "telemetry-off build recorded counters: {snap:?}"
        );
        assert_eq!(hists.count(indigo_obs::Hist::LaunchCycles), 0);
    }

    // --- PR 9 observability primitives are allocation-free too ---
    // Gauges are static atomics; the rolling window is a fixed ring of
    // bucket rows; the flight recorder stores Copy records in a
    // pre-sized seqlock ring. All of them sit on serving hot paths
    // (admission, reactor turn, request completion), so pushes and
    // snapshots must never touch the heap.
    {
        let rolling = indigo_obs::RollingHist::new();
        let ring = indigo_obs::SeqRing::new(64, 0u64);
        let recorder = indigo_serve::flightrec::FlightRecorder::new();
        let record = indigo_serve::flightrec::ReqRecord::blank();
        let delta = min_delta(5, 0, || {
            for i in 0..1_000u64 {
                indigo_obs::Gauge::ServeQueueDepth.set(i as i64);
                indigo_obs::Gauge::ServeLiveFlights.add(1);
                rolling.record_at(i / 100, i);
                ring.push(i);
                recorder.push(record);
            }
            let _ = indigo_obs::gauges_snapshot();
            let _ = rolling.snapshot_at(10);
        });
        assert_eq!(delta, 0, "serving observability primitives allocated");
        assert_eq!(recorder.pushed(), 1_000);
        if indigo_obs::enabled() {
            assert_eq!(
                indigo_obs::gauges_snapshot().get(indigo_obs::Gauge::ServeQueueDepth),
                999
            );
        } else {
            assert_eq!(
                indigo_obs::gauges_snapshot().get(indigo_obs::Gauge::ServeQueueDepth),
                0,
                "telemetry-off build recorded gauge writes"
            );
        }
    }
}
