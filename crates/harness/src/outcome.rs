//! The cell outcome taxonomy and resilience options of the fault-tolerant
//! harness (DESIGN.md §7.3).
//!
//! A 1106-program matrix at paper scale runs for hours; the paper itself
//! notes that some style combinations are pathologically slow or
//! non-terminating on adversarial inputs. The resilient scheduler therefore
//! never lets one cell decide the fate of the run: every measurement cell
//! lands in exactly one [`CellOutcome`], failed cells become structured
//! rows instead of aborts, and downstream figures degrade gracefully (a
//! quarantined cell drops out of the medians with a footnote, it does not
//! poison them).

use crate::matrix::Measurement;
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// What happened to one measurement cell.
#[derive(Clone, Debug)]
pub enum CellOutcome {
    /// The cell ran to completion and (if verification was on) matched the
    /// serial reference.
    Ok(Measurement),
    /// The variant panicked; `payload` is the rendered panic payload.
    Crashed {
        /// Rendered panic payload text.
        payload: String,
    },
    /// The watchdog or the simulated-cycle budget cancelled the cell.
    TimedOut {
        /// The wall-clock budget that was exceeded, when that was the
        /// trigger (`None` for simulated-cycle budget cancellations).
        budget_secs: Option<f64>,
        /// Human-readable cancellation reason.
        reason: String,
    },
    /// The cell produced output that diverges from the serial baseline;
    /// quarantined rather than silently reported (§4.1's verification).
    WrongAnswer {
        /// First-mismatch description from the verifier.
        detail: String,
    },
}

impl CellOutcome {
    /// Stable machine label (`ok` / `crashed` / `timed-out` / `wrong-answer`).
    pub fn label(&self) -> &'static str {
        match self {
            CellOutcome::Ok(_) => "ok",
            CellOutcome::Crashed { .. } => "crashed",
            CellOutcome::TimedOut { .. } => "timed-out",
            CellOutcome::WrongAnswer { .. } => "wrong-answer",
        }
    }

    /// The measurement, for `Ok` cells.
    pub fn measurement(&self) -> Option<&Measurement> {
        match self {
            CellOutcome::Ok(m) => Some(m),
            _ => None,
        }
    }

    /// The failure detail text, for non-`Ok` cells.
    pub fn detail(&self) -> Option<&str> {
        match self {
            CellOutcome::Ok(_) => None,
            CellOutcome::Crashed { payload } => Some(payload),
            CellOutcome::TimedOut { reason, .. } => Some(reason),
            CellOutcome::WrongAnswer { detail } => Some(detail),
        }
    }
}

/// One matrix cell with its identity and outcome — the resilient analog of
/// a bare [`Measurement`] row.
#[derive(Clone, Debug)]
pub struct CellRecord {
    /// Deterministic cell fingerprint (see [`crate::journal::fingerprint`]).
    pub fingerprint: u64,
    /// Variant name (`StyleConfig::name`).
    pub variant: String,
    /// Input graph label.
    pub graph: &'static str,
    /// Target label.
    pub target: String,
    /// What happened.
    pub outcome: CellOutcome,
    /// Whether this record was replayed from a checkpoint journal instead
    /// of executed.
    pub resumed: bool,
}

/// Aggregate outcome counts of one matrix run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Cells that completed and verified.
    pub ok: usize,
    /// Cells recorded as [`CellOutcome::Crashed`].
    pub crashed: usize,
    /// Cells recorded as [`CellOutcome::TimedOut`].
    pub timed_out: usize,
    /// Cells recorded as [`CellOutcome::WrongAnswer`].
    pub wrong_answer: usize,
    /// Cells replayed from the resume journal (counted in the buckets above
    /// as well).
    pub resumed: usize,
}

impl RunSummary {
    /// Total cells.
    pub fn total(&self) -> usize {
        self.ok + self.crashed + self.timed_out + self.wrong_answer
    }

    /// Cells that did not produce a usable measurement.
    pub fn failed(&self) -> usize {
        self.crashed + self.timed_out + self.wrong_answer
    }

    /// The `indigo-exp` process exit code this run maps to: 0 when every
    /// cell measured clean, 2 when the run completed but carries failed
    /// cells. (Exit 1 is reserved for harness errors — bad arguments,
    /// unreadable journals, I/O failures.)
    pub fn exit_code(&self) -> i32 {
        if self.failed() == 0 {
            0
        } else {
            2
        }
    }
}

impl fmt::Display for RunSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cells: {} ok, {} crashed, {} timed out, {} wrong answer ({} resumed)",
            self.total(),
            self.ok,
            self.crashed,
            self.timed_out,
            self.wrong_answer,
            self.resumed
        )
    }
}

/// The result of a resilient matrix run: every cell, in the serial nesting
/// (slot) order, regardless of how it ended.
#[derive(Clone, Debug)]
pub struct MatrixRun {
    /// One record per cell, slot-ordered.
    pub records: Vec<CellRecord>,
}

impl MatrixRun {
    /// The successful measurements, in slot order — bit-identical to what a
    /// fault-free `RunPlan::run_with` would return for the same cells.
    pub fn measurements(&self) -> Vec<Measurement> {
        self.records
            .iter()
            .filter_map(|r| r.outcome.measurement().cloned())
            .collect()
    }

    /// Outcome counts.
    pub fn summary(&self) -> RunSummary {
        let mut s = RunSummary::default();
        for r in &self.records {
            match r.outcome {
                CellOutcome::Ok(_) => s.ok += 1,
                CellOutcome::Crashed { .. } => s.crashed += 1,
                CellOutcome::TimedOut { .. } => s.timed_out += 1,
                CellOutcome::WrongAnswer { .. } => s.wrong_answer += 1,
            }
            if r.resumed {
                s.resumed += 1;
            }
        }
        s
    }
}

/// What an injected fault does to its target cell (CLI: `--inject-fault
/// panic@3`). `Panic`/`Stall` are delegated to the simulator's
/// [`indigo_gpusim::FaultPlan`] for GPU cells and injected at the harness
/// layer for CPU cells; `Corrupt` flips the cell's output after the run so
/// verification quarantines it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellFaultKind {
    /// Unwind mid-cell → [`CellOutcome::Crashed`].
    Panic,
    /// Wedge until the watchdog fires → [`CellOutcome::TimedOut`].
    Stall,
    /// Corrupt the output → [`CellOutcome::WrongAnswer`].
    Corrupt,
}

impl CellFaultKind {
    /// Parse/display label.
    pub fn label(self) -> &'static str {
        match self {
            CellFaultKind::Panic => "panic",
            CellFaultKind::Stall => "stall",
            CellFaultKind::Corrupt => "corrupt",
        }
    }
}

/// A deterministic injected fault: `kind` strikes the cell at slot index
/// `cell` (serial nesting order, the same indexing the journal and the
/// reports use).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// What happens.
    pub kind: CellFaultKind,
    /// Target cell slot.
    pub cell: usize,
}

impl FaultSpec {
    /// Parses `"panic@3"` / `"stall@5"` / `"corrupt@0"`.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let (kind, cell) = s
            .split_once('@')
            .ok_or_else(|| format!("fault spec `{s}` is not of the form kind@cell"))?;
        let kind = match kind {
            "panic" => CellFaultKind::Panic,
            "stall" => CellFaultKind::Stall,
            "corrupt" => CellFaultKind::Corrupt,
            other => {
                return Err(format!(
                    "unknown fault kind `{other}` (panic|stall|corrupt)"
                ))
            }
        };
        let cell = cell
            .parse()
            .map_err(|_| format!("fault cell `{cell}` is not a number"))?;
        Ok(FaultSpec { kind, cell })
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.kind.label(), self.cell)
    }
}

/// Resilience knobs for one matrix run. [`Resilience::none`] (the default)
/// adds cell isolation only — no watchdog, no journal, no faults — and is
/// what the legacy strict entry points use.
#[derive(Clone, Debug, Default)]
pub struct Resilience {
    /// Per-cell wall-clock budget enforced by the watchdog thread.
    pub cell_timeout: Option<Duration>,
    /// Per-cell simulated-cycle budget (GPU cells; catches non-converging
    /// kernels whose launches are individually fast).
    pub cycle_budget: Option<f64>,
    /// Deterministic injected fault, for exercising this very machinery.
    pub fault: Option<FaultSpec>,
    /// Append-only checkpoint journal path. Completed cells are recorded
    /// as they finish; see [`crate::journal`].
    pub journal: Option<PathBuf>,
    /// Preload an existing journal at [`Resilience::journal`] and skip the
    /// cells it records, replaying their outcomes.
    pub resume: bool,
}

impl Resilience {
    /// Isolation only — the strict default.
    pub fn none() -> Resilience {
        Resilience::default()
    }

    /// Sets the per-cell wall-clock budget.
    pub fn with_cell_timeout(mut self, d: Duration) -> Resilience {
        self.cell_timeout = Some(d);
        self
    }

    /// Sets the per-cell simulated-cycle budget.
    pub fn with_cycle_budget(mut self, cycles: f64) -> Resilience {
        self.cycle_budget = Some(cycles);
        self
    }

    /// Arms an injected fault.
    pub fn with_fault(mut self, fault: FaultSpec) -> Resilience {
        self.fault = Some(fault);
        self
    }

    /// Writes the checkpoint journal to `path` (fresh run).
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Resilience {
        self.journal = Some(path.into());
        self
    }

    /// Resumes from (and keeps appending to) the journal at `path`.
    pub fn resuming(mut self, path: impl Into<PathBuf>) -> Resilience {
        self.journal = Some(path.into());
        self.resume = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_spec_parses_all_kinds() {
        assert_eq!(
            FaultSpec::parse("panic@3").unwrap(),
            FaultSpec {
                kind: CellFaultKind::Panic,
                cell: 3
            }
        );
        assert_eq!(
            FaultSpec::parse("stall@0").unwrap().kind,
            CellFaultKind::Stall
        );
        assert_eq!(
            FaultSpec::parse("corrupt@12").unwrap().kind,
            CellFaultKind::Corrupt
        );
        assert!(FaultSpec::parse("panic").is_err());
        assert!(FaultSpec::parse("explode@1").is_err());
        assert!(FaultSpec::parse("panic@x").is_err());
    }

    #[test]
    fn fault_spec_roundtrips_through_display() {
        for s in ["panic@3", "stall@5", "corrupt@0"] {
            assert_eq!(FaultSpec::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn summary_exit_codes() {
        let clean = RunSummary {
            ok: 10,
            ..RunSummary::default()
        };
        assert_eq!(clean.exit_code(), 0);
        let failed = RunSummary {
            ok: 9,
            crashed: 1,
            ..RunSummary::default()
        };
        assert_eq!(failed.exit_code(), 2);
        assert_eq!(failed.failed(), 1);
        assert_eq!(failed.total(), 10);
    }

    #[test]
    fn outcome_labels_are_stable() {
        let crashed = CellOutcome::Crashed {
            payload: "boom".into(),
        };
        assert_eq!(crashed.label(), "crashed");
        assert_eq!(crashed.detail(), Some("boom"));
        let timed = CellOutcome::TimedOut {
            budget_secs: Some(1.0),
            reason: "slow".into(),
        };
        assert_eq!(timed.label(), "timed-out");
        let wrong = CellOutcome::WrongAnswer {
            detail: "vertex 3".into(),
        };
        assert_eq!(wrong.label(), "wrong-answer");
        assert!(wrong.measurement().is_none());
    }
}
