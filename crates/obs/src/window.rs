//! Rolling-window log₂ histograms: a ring of per-second buckets.
//!
//! The cumulative histograms in [`crate::hist`] answer "since boot"; a
//! live dashboard needs "right now". [`RollingHist`] keeps
//! [`WINDOW_SECS`] one-second rows of the same log₂ buckets, indexed by
//! `second % WINDOW_SECS`. A recorder that lands on a stale row CAS-claims
//! it for the current second and clears it; a snapshot sums only rows
//! whose claimed second is still inside the window. p50/p99 and SLO
//! violation ratios computed from a snapshot therefore reflect the last
//! ~10 s of traffic, not the whole process lifetime.
//!
//! The structure is instance-owned (not a static registry) and always
//! compiled: the serving layer keeps its rolling window alive in every
//! build because the chaos invariants and `/metrics` agreement checks run
//! against telemetry-off binaries. Recording is lock- and allocation-free.
//! The window is deliberately approximate at second boundaries: a sample
//! racing a row reset can land in the cleared row or be lost — one sample
//! of error per rotation, which percentile floors already absorb.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::event::now_micros;
use crate::hist::{bucket_floor, bucket_of, NUM_BUCKETS};

/// Seconds of history a [`RollingHist`] retains.
pub const WINDOW_SECS: usize = 10;

/// One second's worth of buckets. `epoch` holds `second + 1` of the
/// traffic it contains (0 = never written).
struct Row {
    epoch: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl Row {
    fn new() -> Row {
        #[allow(clippy::declare_interior_mutable_const)]
        const Z: AtomicU64 = AtomicU64::new(0);
        Row {
            epoch: AtomicU64::new(0),
            buckets: [Z; NUM_BUCKETS],
        }
    }
}

/// A 10-second rolling log₂ histogram (see module docs).
pub struct RollingHist {
    rows: [Row; WINDOW_SECS],
}

impl Default for RollingHist {
    fn default() -> RollingHist {
        RollingHist::new()
    }
}

impl RollingHist {
    /// An empty window.
    #[must_use]
    pub fn new() -> RollingHist {
        RollingHist {
            rows: std::array::from_fn(|_| Row::new()),
        }
    }

    /// Records one value at the current process-monotonic second.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_at(now_micros() / 1_000_000, v);
    }

    /// Records one value at an explicit second (tests use this to cross
    /// window boundaries deterministically).
    pub fn record_at(&self, now_sec: u64, v: u64) {
        let tag = now_sec + 1; // 0 is reserved for "never written"
        let row = &self.rows[(now_sec as usize) % WINDOW_SECS];
        let seen = row.epoch.load(Ordering::Acquire);
        if seen != tag {
            // stale row from a previous rotation: first arrival claims and
            // clears it; losers just record — the row is already current
            if row
                .epoch
                .compare_exchange(seen, tag, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                for b in &row.buckets {
                    b.store(0, Ordering::Relaxed);
                }
            }
        }
        row.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Sums the rows still inside the window ending at the current second.
    #[must_use]
    pub fn snapshot(&self) -> RollingSnapshot {
        self.snapshot_at(now_micros() / 1_000_000)
    }

    /// Sums the rows still inside the window ending at `now_sec`.
    #[must_use]
    pub fn snapshot_at(&self, now_sec: u64) -> RollingSnapshot {
        let oldest_tag = (now_sec + 1).saturating_sub(WINDOW_SECS as u64 - 1);
        let mut buckets = [0u64; NUM_BUCKETS];
        for row in &self.rows {
            let tag = row.epoch.load(Ordering::Acquire);
            if tag == 0 || tag < oldest_tag || tag > now_sec + 1 {
                continue; // never written, aged out, or from a racing future second
            }
            for (i, b) in row.buckets.iter().enumerate() {
                buckets[i] += b.load(Ordering::Relaxed);
            }
        }
        RollingSnapshot { buckets }
    }
}

/// A point-in-time sum of the live rows of a [`RollingHist`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RollingSnapshot {
    /// Log₂ bucket counts (same edges as [`crate::hist`]).
    pub buckets: [u64; NUM_BUCKETS],
}

impl RollingSnapshot {
    /// Total samples inside the window.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Bucket-floor estimate of the `p`-th percentile (`0.0..=100.0`);
    /// 0 for an empty window.
    #[must_use]
    pub fn percentile_floor(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(i);
            }
        }
        bucket_floor(NUM_BUCKETS - 1)
    }

    /// Samples whose bucket floor is at or above `threshold` — the SLO
    /// violation count at bucket granularity (counts a bucket as violating
    /// only when every value it can hold is ≥ `threshold`, so this is a
    /// lower bound).
    #[must_use]
    pub fn over(&self, threshold: u64) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(i, _)| bucket_floor(*i) >= threshold && *i > 0)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Fraction of windowed samples at or above `threshold` (0.0 when the
    /// window is empty).
    #[must_use]
    pub fn violation_ratio(&self, threshold: u64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        self.over(threshold) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_drops_rows_older_than_ten_seconds() {
        let w = RollingHist::new();
        w.record_at(100, 50);
        w.record_at(104, 50);
        w.record_at(109, 50);
        assert_eq!(w.snapshot_at(109).count(), 3);
        // at t=113 the t=100 row has aged out (window covers 104..=113)
        assert_eq!(w.snapshot_at(113).count(), 2);
        // at t=120 everything is gone
        assert_eq!(w.snapshot_at(120).count(), 0);
    }

    #[test]
    fn ring_reuse_clears_the_stale_row() {
        let w = RollingHist::new();
        for _ in 0..5 {
            w.record_at(7, 100);
        }
        // second 17 maps onto the same row (17 % 10 == 7 % 10) and must
        // not inherit second 7's five samples
        w.record_at(17, 100);
        assert_eq!(w.snapshot_at(17).count(), 1);
    }

    #[test]
    fn percentiles_and_slo_ratio_track_the_window() {
        let w = RollingHist::new();
        for _ in 0..90 {
            w.record_at(50, 100); // bucket floor 64
        }
        for _ in 0..10 {
            w.record_at(50, 10_000); // bucket floor 8192
        }
        let snap = w.snapshot_at(50);
        assert_eq!(snap.count(), 100);
        assert_eq!(snap.percentile_floor(50.0), 64);
        assert_eq!(snap.percentile_floor(99.0), 8192);
        assert_eq!(snap.over(8192), 10);
        assert!((snap.violation_ratio(8192) - 0.10).abs() < 1e-9);
        assert_eq!(snap.violation_ratio(1 << 20), 0.0);
    }

    #[test]
    fn empty_window_is_all_zeros() {
        let snap = RollingHist::new().snapshot_at(42);
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.percentile_floor(99.0), 0);
        assert_eq!(snap.violation_ratio(1), 0.0);
    }

    #[test]
    fn concurrent_recording_loses_at_most_boundary_samples() {
        use std::sync::Arc;
        let w = Arc::new(RollingHist::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        w.record_at(200, 77);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // one second, no rotation: every sample lands
        assert_eq!(w.snapshot_at(200).count(), 40_000);
    }
}
