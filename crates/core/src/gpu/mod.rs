//! GPU-model kernels, executed on the `indigo-gpusim` simulator.
//!
//! [`DeviceGraph`] uploads both graph layouts into simulated device buffers
//! once per run (like the `cudaMemcpy` setup phase of the paper's codes,
//! excluded from timing); the per-algorithm modules then launch the
//! style-configured kernels.

pub mod mis;
pub mod pr;
pub mod relax;
pub mod tc;

use indigo_gpusim::{Assign, GpuBuf};
use indigo_styles::{Granularity, StyleConfig};

/// The input graph in simulated device memory (CSR + COO, paper §4.2).
pub struct DeviceGraph {
    /// CSR row offsets (`nbr_idx`), length `n + 1`.
    pub row: GpuBuf,
    /// CSR neighbor array (`nbr_list`), length `m`.
    pub nbr: GpuBuf,
    /// Edge weights parallel to `nbr` (`e_weight`).
    pub wt: GpuBuf,
    /// COO source array (`src_list`).
    pub src: GpuBuf,
    /// COO destination array (`dst_list`).
    pub dst: GpuBuf,
    /// COO weights.
    pub coo_wt: GpuBuf,
    /// Vertex count.
    pub n: usize,
    /// Directed edge count.
    pub m: usize,
}

impl DeviceGraph {
    /// Uploads the prepared input (host-side; not part of the simulated
    /// kernel time, matching the paper's measurement of kernel throughput).
    pub fn upload(input: &crate::GraphInput) -> Self {
        let csr = &input.csr;
        let coo = &input.coo;
        assert!(
            csr.num_edges() < u32::MAX as usize,
            "edge count exceeds u32 offsets"
        );
        let row: Vec<u32> = csr.row_start().iter().map(|&o| o as u32).collect();
        DeviceGraph {
            row: GpuBuf::from_slice(&row),
            nbr: GpuBuf::from_slice(csr.nbr_list()),
            wt: GpuBuf::from_slice(csr.weights()),
            src: GpuBuf::from_slice(coo.src_list()),
            dst: GpuBuf::from_slice(coo.dst_list()),
            coo_wt: GpuBuf::from_slice(coo.weights()),
            n: csr.num_nodes(),
            m: csr.num_edges(),
        }
    }
}

/// Maps the §2.8 granularity style onto the simulator's lane assignment.
pub fn assign_of(cfg: &StyleConfig) -> Assign {
    match cfg.granularity.expect("GPU variants carry a granularity") {
        Granularity::Thread => Assign::ThreadPerItem,
        Granularity::Warp => Assign::WarpPerItem,
        Granularity::Block => Assign::BlockPerItem,
    }
}

/// Whether the §2.7 persistent style is selected.
pub fn persistent_of(cfg: &StyleConfig) -> bool {
    matches!(
        cfg.persistence,
        Some(indigo_styles::Persistence::Persistent)
    )
}

/// The §2.9 atomic flavor as a buffer cost class.
pub fn atomic_kind_of(cfg: &StyleConfig) -> indigo_gpusim::BufKind {
    match cfg.atomic.expect("GPU variants carry an atomic kind") {
        indigo_styles::AtomicKind::Atomic => indigo_gpusim::BufKind::Atomic,
        indigo_styles::AtomicKind::CudaAtomic => indigo_gpusim::BufKind::CudaAtomic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indigo_graph::gen::toy;
    use indigo_styles::{Algorithm, Model};

    #[test]
    fn upload_mirrors_layouts() {
        let input = crate::GraphInput::new(toy::weighted_diamond());
        let dg = DeviceGraph::upload(&input);
        assert_eq!(dg.n, 5);
        assert_eq!(dg.m, 10);
        assert_eq!(dg.row.len(), 6);
        assert_eq!(dg.nbr.len(), 10);
        assert_eq!(dg.src.host_read(0), input.coo.src(0));
        assert_eq!(dg.coo_wt.host_read(3), input.coo.weight(3));
    }

    #[test]
    fn style_mapping_helpers() {
        let mut cfg = StyleConfig::baseline(Algorithm::Bfs, Model::Cuda);
        assert_eq!(assign_of(&cfg), Assign::ThreadPerItem);
        assert!(!persistent_of(&cfg));
        cfg.granularity = Some(Granularity::Block);
        cfg.persistence = Some(indigo_styles::Persistence::Persistent);
        cfg.atomic = Some(indigo_styles::AtomicKind::CudaAtomic);
        assert_eq!(assign_of(&cfg), Assign::BlockPerItem);
        assert!(persistent_of(&cfg));
        assert_eq!(atomic_kind_of(&cfg), indigo_gpusim::BufKind::CudaAtomic);
    }
}
