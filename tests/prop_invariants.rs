//! Randomized tests on the core data structures and on the central invariant
//! of the whole suite: *every style variant computes the same answer as the
//! serial oracle on arbitrary graphs*.
//!
//! Deterministic seeded sampling (splitmix64) instead of a property-testing
//! framework: the build container resolves no external crates, and fixed
//! seeds make failures reproducible without a shrinker.

use indigo2::core::{run_variant, verify, GraphInput, Target};
use indigo2::gpusim::rtx3090;
use indigo2::graph::{gen, Csr, GraphBuilder};
use indigo2::styles::{enumerate, Model};
use std::collections::BTreeSet;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + ((self.next() as u128 * (hi - lo) as u128) >> 64) as usize
    }
}

/// An arbitrary undirected graph as (n, edge list), possibly with self loops
/// and duplicates — the builder must clean those up.
fn random_graph(rng: &mut Rng) -> (usize, Vec<(u32, u32)>) {
    let n = rng.range(2, 40);
    let m = rng.range(0, 120);
    let edges = (0..m)
        .map(|_| (rng.range(0, n) as u32, rng.range(0, n) as u32))
        .collect();
    (n, edges)
}

fn build(n: usize, edges: &[(u32, u32)]) -> Csr {
    let mut b = GraphBuilder::new(n);
    for &(a, c) in edges {
        b.add_edge(a, c);
    }
    b.build("prop")
}

/// Builder postconditions: symmetric, sorted, deduplicated, loop-free.
#[test]
fn builder_invariants() {
    let mut rng = Rng::new(0xb111);
    for _ in 0..48 {
        let (n, edges) = random_graph(&mut rng);
        let g = build(n, &edges);
        assert!(g.is_symmetric());
        let expected: BTreeSet<(u32, u32)> = edges
            .iter()
            .filter(|(a, c)| a != c)
            .flat_map(|&(a, c)| [(a, c), (c, a)])
            .collect();
        let actual: BTreeSet<(u32, u32)> = g.iter_edges().map(|(v, u, _)| (v, u)).collect();
        assert_eq!(actual, expected);
        for v in 0..n as u32 {
            assert!(g.neighbors(v).windows(2).all(|w| w[0] < w[1]));
        }
    }
}

/// COO derivation preserves the edge multiset and order.
#[test]
fn coo_matches_csr() {
    let mut rng = Rng::new(0xc00);
    for _ in 0..48 {
        let (n, edges) = random_graph(&mut rng);
        let g = build(n, &edges);
        let coo = indigo2::graph::Coo::from_csr(&g);
        assert_eq!(coo.num_edges(), g.num_edges());
        for (i, (v, u, _)) in g.iter_edges().enumerate() {
            assert_eq!((coo.src(i), coo.dst(i)), (v, u));
        }
    }
}

/// Synthetic weights are direction-symmetric and in range.
#[test]
fn weights_symmetric() {
    let mut rng = Rng::new(0x3337);
    for _ in 0..48 {
        let (n, edges) = random_graph(&mut rng);
        let g = build(n, &edges).with_synthetic_weights();
        for v in 0..n as u32 {
            let range = g.neighbor_range(v);
            for (off, &u) in g.neighbors(v).iter().enumerate() {
                let w = g.weights()[range.start + off];
                assert!((1..=indigo2::graph::weights::MAX_WEIGHT).contains(&w));
                // find the reverse edge's weight
                let rr = g.neighbor_range(u);
                let pos = g.neighbors(u).binary_search(&v).unwrap();
                assert_eq!(w, g.weights()[rr.start + pos]);
            }
        }
    }
}

/// Graph stats internal consistency on arbitrary graphs.
#[test]
fn stats_consistency() {
    let mut rng = Rng::new(0x57a7);
    for _ in 0..48 {
        let (n, edges) = random_graph(&mut rng);
        let g = build(n, &edges);
        let s = indigo2::graph::stats::GraphStats::compute(&g);
        assert_eq!(s.nodes, n);
        assert_eq!(s.edges, g.num_edges());
        assert!(s.components >= 1);
        assert!(s.max_degree <= n.saturating_sub(1));
        assert!(s.avg_degree <= s.max_degree as f64 + 1e-12);
    }
}

/// The headline invariant: a pseudo-random style variant computes the oracle
/// answer on an arbitrary graph (weights included), across all three models.
#[test]
fn random_variant_matches_oracle() {
    let suite = enumerate::full_suite();
    let mut rng = Rng::new(0x04ac1e);
    for _ in 0..48 {
        let (n, edges) = random_graph(&mut rng);
        let input = GraphInput::new(build(n, &edges));
        let cfg = &suite[rng.range(0, suite.len())];
        let target = match cfg.model {
            Model::Cuda => Target::gpu(rtx3090()),
            _ => Target::cpu(2),
        };
        let r = run_variant(cfg, &input, &target);
        assert!(
            verify::check(cfg, &input, &r.output).is_ok(),
            "{} failed on a {}-vertex graph",
            cfg.name(),
            n
        );
    }
}

/// G(n, p) generator produces valid, self-consistent graphs.
#[test]
fn gnp_valid() {
    for (i, n) in [2usize, 3, 7, 20, 59].into_iter().enumerate() {
        for p in [0.0, 0.05, 0.15, 0.29] {
            let g = gen::gnp(n, p, (i as u64) * 31 + (p * 100.0) as u64);
            g.validate();
            assert!(g.is_symmetric());
            assert_eq!(g.num_nodes(), n);
        }
    }
}
