//! Instrumented device-memory buffers.
//!
//! Kernels may only touch shared state through [`GpuBuf`] (u32) and
//! [`GpuBufF32`] handles, so the simulator sees every global-memory access.
//! Each buffer carries a synthetic base address (buffers are given disjoint
//! 1-TiB-aligned regions) used for 128-byte coalescing analysis, and a
//! [`BufKind`] declaration deciding how accesses are costed:
//!
//! * `Plain` — an ordinary `__global__` array,
//! * `Atomic` — an array targeted by classic `atomicMin()`-style intrinsics
//!   (Listing 9a): RMW ops pay atomic costs, plain loads stay cheap,
//! * `CudaAtomic` — a `cuda::atomic<T>` array with default settings
//!   (Listing 9b): *every* access, including `load()`/`store()`, pays the
//!   device's seq_cst/system-scope penalty.
//!
//! Functionally all flavors are host atomics, so simulation is exact and
//! race-free regardless of the declared cost class.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Cost class of a buffer (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufKind {
    /// Ordinary global array.
    Plain,
    /// Target of classic CUDA atomics.
    Atomic,
    /// `cuda::atomic<T>` array with default memory order and scope.
    CudaAtomic,
}

static NEXT_BUF_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_base_addr() -> u64 {
    // 1 TiB per buffer keeps segment spaces disjoint
    NEXT_BUF_ID.fetch_add(1, Ordering::Relaxed) << 40
}

/// A `u32` device buffer.
pub struct GpuBuf {
    cells: Vec<AtomicU32>,
    base: u64,
    kind: BufKind,
}

impl GpuBuf {
    /// Allocates `len` words initialized to `init`.
    pub fn new(len: usize, init: u32) -> Self {
        GpuBuf {
            cells: (0..len).map(|_| AtomicU32::new(init)).collect(),
            base: fresh_base_addr(),
            kind: BufKind::Plain,
        }
    }

    /// Allocates from host data.
    pub fn from_slice(data: &[u32]) -> Self {
        GpuBuf {
            cells: data.iter().map(|&v| AtomicU32::new(v)).collect(),
            base: fresh_base_addr(),
            kind: BufKind::Plain,
        }
    }

    /// Sets the cost class (builder style).
    pub fn with_kind(mut self, kind: BufKind) -> Self {
        self.kind = kind;
        self
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Declared cost class.
    pub fn kind(&self) -> BufKind {
        self.kind
    }

    /// Synthetic byte address of element `i` (for coalescing analysis).
    #[inline(always)]
    pub(crate) fn addr(&self, i: usize) -> u64 {
        self.base + (i as u64) * 4
    }

    /// Raw cell access for the simulator's functional path.
    #[inline(always)]
    pub(crate) fn cell(&self, i: usize) -> &AtomicU32 {
        &self.cells[i]
    }

    /// Host-side read (no cost accounting) — for setup and verification.
    pub fn host_read(&self, i: usize) -> u32 {
        self.cells[i].load(Ordering::Relaxed)
    }

    /// Host-side write (no cost accounting).
    pub fn host_write(&self, i: usize, v: u32) {
        self.cells[i].store(v, Ordering::Relaxed);
    }

    /// Host-side snapshot of the whole buffer.
    pub fn to_vec(&self) -> Vec<u32> {
        self.cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// An `f32` device buffer (PageRank values). Bit-stored in `AtomicU32`.
pub struct GpuBufF32 {
    cells: Vec<AtomicU32>,
    base: u64,
    kind: BufKind,
}

impl GpuBufF32 {
    /// Allocates `len` floats initialized to `init`.
    pub fn new(len: usize, init: f32) -> Self {
        GpuBufF32 {
            cells: (0..len).map(|_| AtomicU32::new(init.to_bits())).collect(),
            base: fresh_base_addr(),
            kind: BufKind::Plain,
        }
    }

    /// Sets the cost class (builder style).
    pub fn with_kind(mut self, kind: BufKind) -> Self {
        self.kind = kind;
        self
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Declared cost class.
    pub fn kind(&self) -> BufKind {
        self.kind
    }

    #[inline(always)]
    pub(crate) fn addr(&self, i: usize) -> u64 {
        self.base + (i as u64) * 4
    }

    #[inline(always)]
    pub(crate) fn cell(&self, i: usize) -> &AtomicU32 {
        &self.cells[i]
    }

    /// Host-side read (no cost accounting).
    pub fn host_read(&self, i: usize) -> f32 {
        f32::from_bits(self.cells[i].load(Ordering::Relaxed))
    }

    /// Host-side write (no cost accounting).
    pub fn host_write(&self, i: usize, v: f32) {
        self.cells[i].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Host-side snapshot.
    pub fn to_vec(&self) -> Vec<f32> {
        self.cells
            .iter()
            .map(|c| f32::from_bits(c.load(Ordering::Relaxed)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_get_disjoint_address_spaces() {
        let a = GpuBuf::new(16, 0);
        let b = GpuBuf::new(16, 0);
        // no element of a shares a 128-byte segment with any element of b
        assert_ne!(a.addr(15) >> 7, b.addr(0) >> 7);
        assert_ne!(a.base >> 40, b.base >> 40);
    }

    #[test]
    fn consecutive_elements_share_segments() {
        let a = GpuBuf::new(64, 0);
        // 32 consecutive u32s span 128 bytes = 1 segment
        assert_eq!(a.addr(0) >> 7, a.addr(31) >> 7);
        assert_ne!(a.addr(0) >> 7, a.addr(32) >> 7);
    }

    #[test]
    fn host_round_trip() {
        let a = GpuBuf::from_slice(&[1, 2, 3]);
        a.host_write(1, 42);
        assert_eq!(a.to_vec(), vec![1, 42, 3]);
        assert_eq!(a.host_read(2), 3);
    }

    #[test]
    fn f32_round_trip() {
        let a = GpuBufF32::new(4, 0.25);
        assert_eq!(a.host_read(3), 0.25);
        a.host_write(0, -1.5);
        assert_eq!(a.to_vec(), vec![-1.5, 0.25, 0.25, 0.25]);
    }

    #[test]
    fn kinds_are_settable() {
        let a = GpuBuf::new(1, 0).with_kind(BufKind::CudaAtomic);
        assert_eq!(a.kind(), BufKind::CudaAtomic);
        let f = GpuBufF32::new(1, 0.0).with_kind(BufKind::Atomic);
        assert_eq!(f.kind(), BufKind::Atomic);
    }
}
