//! # indigo-graph
//!
//! Graph substrate for the indigo-rs reproduction of the SC'23 Indigo2 study.
//!
//! The paper stores every input in two layouts (§4.2): compressed sparse row
//! (CSR) for the vertex-based codes and coordinate (COO) for the edge-based
//! codes, with every undirected edge represented as two directed edges. This
//! crate provides both layouts ([`Csr`], [`Coo`]), a deduplicating
//! symmetrizing [`builder::GraphBuilder`], seeded generators for the five
//! graph *families* used in the evaluation ([`gen`]), file loaders for the
//! original DIMACS/SNAP/MatrixMarket formats ([`io`]), and the degree /
//! diameter analysis behind the paper's Tables 4 and 5 ([`stats`]).
//!
//! Node ids are `u32` and edge weights are `u32`, matching the 32-bit data
//! types the paper evaluates (§4.1).
//!
//! ```
//! use indigo_graph::{gen, stats::GraphStats};
//!
//! let g = gen::grid2d(64, 64);           // 2d-2e20.sym family, small scale
//! assert_eq!(g.num_nodes(), 64 * 64);
//! let s = GraphStats::compute(&g);
//! assert_eq!(s.max_degree, 4);
//! ```

pub mod builder;
pub mod coo;
pub mod csr;
pub mod gen;
pub mod io;
pub mod stats;
pub mod traverse;
pub mod weights;

pub use builder::GraphBuilder;
pub use coo::Coo;
pub use csr::Csr;
pub use traverse::{prefetch_read, scan_prefetched, DegreeTable, RcpTable, PREFETCH_DIST};

/// Node identifier type used throughout the suite (32-bit, per paper §4.1).
pub type NodeId = u32;
/// Edge weight type used by the weighted algorithms (SSSP).
pub type Weight = u32;

/// Distance value treated as "infinity" by the shortest-path codes.
///
/// `u32::MAX` is reserved so that `dist + weight` cannot wrap for any real
/// path in the graphs we generate (weights are capped at
/// [`weights::MAX_WEIGHT`]).
pub const INF: u32 = u32::MAX;
