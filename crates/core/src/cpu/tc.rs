//! CPU triangle counting in every applicable style.
//!
//! Topology-driven and deterministic by construction (Table 2): the kernel
//! only reads the graph and accumulates a count. The style axes are the
//! iteration direction (§2.1: per-vertex vs per-edge), the CPU reduction
//! style for the global count (§2.10.2), and the model's loop schedule.
//!
//! Counting rule (each triangle once): for every edge `(v, u)` with
//! `v < u`, count common neighbors `w > u` of the two sorted adjacency
//! lists.

use super::CpuExec;
use crate::serial::intersect_above;
use indigo_exec::sync::omp_critical;
use indigo_styles::{CpuReduction, Direction, StyleConfig};
use std::sync::atomic::{AtomicU64, Ordering};

/// Cache-line-padded per-thread partial for the clause style.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// Runs the TC variant `cfg`; returns the triangle count (iterations = 1,
/// TC is a single sweep).
pub fn run(cfg: &StyleConfig, input: &crate::GraphInput, exec: &CpuExec) -> (u64, usize) {
    let csr = &input.csr;
    let coo = &input.coo;
    let style = cfg
        .cpu_reduction
        .expect("CPU TC variants carry a reduction style");
    let global = AtomicU64::new(0);
    let partials: Vec<PaddedU64> = (0..exec.threads())
        .map(|_| PaddedU64(AtomicU64::new(0)))
        .collect();

    let add = |tid: usize, val: u64| {
        if val == 0 {
            return;
        }
        match style {
            CpuReduction::AtomicRed => {
                global.fetch_add(val, Ordering::Relaxed);
            }
            CpuReduction::CriticalRed => omp_critical(|| {
                let cur = global.load(Ordering::Relaxed);
                global.store(cur + val, Ordering::Relaxed);
            }),
            CpuReduction::ClauseRed => {
                partials[tid].0.fetch_add(val, Ordering::Relaxed);
            }
        }
    };

    match cfg.direction {
        Direction::VertexBased => exec.pfor(csr.num_nodes(), |vi, tid| {
            let v = vi as u32;
            let adj_v = csr.neighbors(v);
            let mut local = 0u64;
            for &u in adj_v {
                if u > v {
                    local += intersect_above(adj_v, csr.neighbors(u), u);
                }
            }
            add(tid, local);
        }),
        Direction::EdgeBased => exec.pfor(coo.num_edges(), |e, tid| {
            let (v, u) = (coo.src(e), coo.dst(e));
            if v < u {
                add(tid, intersect_above(csr.neighbors(v), csr.neighbors(u), u));
            }
        }),
    }

    let count = match style {
        CpuReduction::ClauseRed => partials.iter().map(|p| p.0.load(Ordering::Relaxed)).sum(),
        _ => global.load(Ordering::Relaxed),
    };
    (count, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{serial, GraphInput};
    use indigo_graph::gen::{self, toy};
    use indigo_styles::{enumerate, Algorithm, Model};

    #[test]
    fn all_cpu_tc_variants_match_reference() {
        let graphs = vec![
            toy::complete(7),
            toy::two_triangles(),
            toy::cycle(11),
            gen::gnp(70, 0.15, 6),
            gen::clique_overlap(200, 2.0, 1),
        ];
        for g in graphs {
            let input = GraphInput::new(g);
            let expect = serial::triangles(&input.csr);
            for model in [Model::Omp, Model::Cpp] {
                for cfg in enumerate::variants(Algorithm::Tc, model) {
                    let exec = CpuExec::new(&cfg, 3);
                    let (got, _) = run(&cfg, &input, &exec);
                    assert_eq!(got, expect, "{} on {}", cfg.name(), input.name());
                }
            }
        }
    }

    #[test]
    fn triangle_free_graph_counts_zero() {
        let input = GraphInput::new(gen::grid2d(8, 8));
        let cfg = StyleConfig::baseline(Algorithm::Tc, Model::Cpp);
        let exec = CpuExec::new(&cfg, 4);
        assert_eq!(run(&cfg, &input, &exec).0, 0);
    }

    #[test]
    fn empty_graph_counts_zero() {
        let input = GraphInput::new(indigo_graph::Csr::from_raw(vec![0], vec![], vec![], "e"));
        let cfg = StyleConfig::baseline(Algorithm::Tc, Model::Omp);
        let exec = CpuExec::new(&cfg, 2);
        assert_eq!(run(&cfg, &input, &exec).0, 0);
    }
}
