//! Randomized tests of the GPU simulator's cost model and launcher.
//!
//! Deterministic seeded sampling (splitmix64) instead of a property-testing
//! framework: the build container resolves no external crates, and fixed
//! seeds make failures reproducible without a shrinker.

use indigo_gpusim::{rtx3090, titan_v, Assign, BufKind, GpuBuf, ReduceStyle, Sim};

const ASSIGNS: [Assign; 3] = [
    Assign::ThreadPerItem,
    Assign::WarpPerItem,
    Assign::BlockPerItem,
];

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + ((self.next() as u128 * (hi - lo) as u128) >> 64) as usize
    }
}

/// Functional exactness: every item is processed exactly once under any
/// assignment/persistence combination, including sizes straddling warp and
/// block boundaries.
#[test]
fn coverage_is_exact() {
    for assign in ASSIGNS {
        for persistent in [false, true] {
            for items in [1usize, 2, 31, 32, 33, 255, 256, 257, 1024, 2999] {
                let mut sim = Sim::new(rtx3090());
                let hits = GpuBuf::new(items, 0);
                sim.launch(items, assign, persistent, |ctx, i| {
                    if ctx.lane() == 0 {
                        ctx.atomic_add(&hits, i, 1);
                    }
                });
                assert!(
                    hits.to_vec().iter().all(|&h| h == 1),
                    "items={items} {assign:?} persistent={persistent}"
                );
            }
        }
    }
}

/// Cost monotonicity: more items never cost fewer cycles.
#[test]
fn cost_monotone_in_items() {
    let run = |n: usize, assign: Assign| {
        let data = GpuBuf::new(n, 0);
        let mut sim = Sim::new(titan_v());
        sim.launch(n, assign, false, |ctx, i| {
            ctx.ld(&data, i);
        });
        sim.elapsed_cycles()
    };
    let mut rng = Rng::new(0xc057);
    for assign in ASSIGNS {
        for _ in 0..10 {
            let items = rng.range(32, 2000);
            let extra = rng.range(1, 2000);
            assert!(
                run(items + extra, assign) >= run(items, assign),
                "items={items} extra={extra} {assign:?}"
            );
        }
    }
}

/// Reductions are exact for arbitrary contribution patterns in every style,
/// under every assignment.
#[test]
fn reductions_exact() {
    let mut rng = Rng::new(0x4ed);
    for style in [
        ReduceStyle::GlobalAdd,
        ReduceStyle::BlockAdd,
        ReduceStyle::ReductionAdd,
    ] {
        for assign in ASSIGNS {
            for _ in 0..4 {
                let len = rng.range(1, 500);
                let vals: Vec<u64> = (0..len).map(|_| rng.next() % 1000).collect();
                let expect: u64 = vals.iter().sum();
                let mut sim = Sim::new(rtx3090());
                let total = sim.launch_reduce_u64(
                    vals.len(),
                    assign,
                    false,
                    style,
                    BufKind::Atomic,
                    |ctx, i| {
                        if ctx.lane() == 0 {
                            ctx.reduce_add_u64(vals[i]);
                        }
                    },
                );
                assert_eq!(total, expect, "len={len} {style:?} {assign:?}");
            }
        }
    }
}

/// CudaAtomic-declared buffers never cost less than Atomic-declared ones for
/// the same access sequence.
#[test]
fn cuda_atomic_never_cheaper() {
    let run = |items: usize, kind: BufKind| {
        let data = GpuBuf::new(items, 0).with_kind(kind);
        let mut sim = Sim::new(titan_v());
        sim.launch(items, Assign::ThreadPerItem, false, |ctx, i| {
            let v = ctx.ld(&data, i);
            ctx.atomic_add(&data, (i + 1) % items, v % 7);
        });
        sim.elapsed_cycles()
    };
    for items in [64usize, 127, 500, 1023, 1499] {
        assert!(
            run(items, BufKind::CudaAtomic) >= run(items, BufKind::Atomic),
            "items={items}"
        );
    }
}

/// Determinism: identical launches report identical cycles and state.
#[test]
fn launches_deterministic() {
    let mut rng = Rng::new(0xdead);
    for assign in ASSIGNS {
        for persistent in [false, true] {
            for _ in 0..4 {
                let items = rng.range(1, 800);
                let run = || {
                    let data = GpuBuf::new(items, 7).with_kind(BufKind::Atomic);
                    let mut sim = Sim::new(rtx3090());
                    sim.launch(items, assign, persistent, |ctx, i| {
                        let v = ctx.ld(&data, i);
                        ctx.atomic_min(&data, (i * 13) % items, v);
                    });
                    (sim.elapsed_cycles(), data.to_vec())
                };
                assert_eq!(
                    run(),
                    run(),
                    "items={items} {assign:?} persistent={persistent}"
                );
            }
        }
    }
}
