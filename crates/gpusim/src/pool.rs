//! Persistent block-execution worker pool for multi-threaded launches.
//!
//! PR 1's `run_blocks_parallel` paid a `std::thread::scope` spawn/join per
//! launch. Iterative kernels (BFS/SSSP rounds, worklist sweeps) issue
//! thousands of small launches per cell, so thread churn sat directly on the
//! measurement critical path. This module replaces it with parked workers:
//!
//! * a [`SimPool`] owns `extra_workers` parked OS threads, each holding a
//!   private, capacity-retaining [`StepTable`] that is reused for every
//!   block it ever simulates (the per-block `StepTable::new` of PR 1 is
//!   gone);
//! * [`SimPool::run_job`] publishes one launch's block range, wakes the
//!   workers, and *participates* from the calling thread, so a `Sim` with
//!   `workers = W` engages exactly `min(W, grid_blocks)` threads — the
//!   `workers.min(grid_blocks)` guarantee of the scoped design carries over
//!   (extra workers fail to claim a block and go straight back to sleep);
//! * blocks are claimed from a shared atomic cursor (dynamic stealing is
//!   safe because outcomes land in index-addressed arena slots and the
//!   caller merges them in block order);
//! * a panicking block — including a fired [`indigo_cancel::CancelToken`]
//!   unwinding out of a persistent-round checkpoint — does not poison the
//!   pool: the worker records the payload and keeps draining, and
//!   [`SimPool::run_job`] re-raises the *earliest-block* payload after the
//!   launch fully settles, mirroring the drain discipline of the harness's
//!   `run_indexed_parallel` (DESIGN.md §7.3).
//!
//! Pools are leased from a process-wide [`PoolRegistry`] keyed by worker
//! count (the lease cache extracted from `crates/exec/src/pool_cache.rs`):
//! a `Sim` takes a pool on its first parallel launch, keeps it for its whole
//! life, and returns it on drop, so back-to-back measurement cells reuse the
//! same parked threads. Leases are exclusive — two cells simulating
//! concurrently each hold their own pool and never serialize against each
//! other.
//!
//! Safety: `run_job` erases the job closure's lifetime to hand it to the
//! parked threads. The erased pointer is only dereferenced by a thread that
//! has *claimed a block*, every claimed block is executed before the
//! `remaining` count reaches zero, and `run_job` does not return (nor clear
//! the job) until `remaining == 0` **and** every engaged worker has checked
//! out — so no worker can touch the closure, the launch shape, or the
//! outcome arena after `run_job`'s borrows end.

use crate::cost::StepTable;
use indigo_exec::PoolRegistry;
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A block executor: `(block_index, worker_scratch_table)`. The table is
/// worker-private and reused across blocks, launches, and leases.
pub(crate) type BlockExec<'a> = dyn Fn(usize, &mut StepTable) + Sync + 'a;

/// Type-erased pointer to the current job's [`BlockExec`].
#[derive(Clone, Copy)]
struct ErasedExec(*const BlockExec<'static>);
// Safety: the pointee is `Sync` (required by `BlockExec`), and the pool's
// settle protocol keeps it alive while any worker can reach it.
unsafe impl Send for ErasedExec {}

/// One published launch.
struct JobSlot {
    /// Monotonic job id; workers use it to tell "new job" from spurious
    /// wakeups.
    generation: u64,
    /// Blocks in the current job.
    grid_blocks: usize,
    /// The block executor, present only while a job is active.
    exec: Option<ErasedExec>,
    /// Workers currently engaged with the active job (captured it under the
    /// lock). `run_job` settles only when this returns to zero.
    engaged: usize,
    /// Tells workers to exit their park loop.
    shutdown: bool,
}

struct Shared {
    job: Mutex<JobSlot>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// `run_job` waits here for stragglers.
    done_cv: Condvar,
    /// Next unclaimed block of the active job.
    cursor: AtomicUsize,
    /// Blocks of the active job not yet fully executed.
    remaining: AtomicUsize,
    /// Payloads of panicked blocks, drained by `run_job` after settling.
    panics: Mutex<Vec<(usize, Box<dyn Any + Send>)>>,
}

/// A leased team of parked simulation workers (see module docs).
pub(crate) struct SimPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Process-wide lease cache, keyed by extra-worker count.
static POOLS: PoolRegistry<SimPool> = PoolRegistry::new();

/// Leases a pool with `extra_workers` parked threads (the caller of
/// [`SimPool::run_job`] is the +1). Return it with [`give_back_sim_pool`].
pub(crate) fn lease_sim_pool(extra_workers: usize) -> SimPool {
    POOLS.lease(extra_workers, || SimPool::spawn(extra_workers))
}

/// Returns a leased pool to the idle cache for the next `Sim`.
pub(crate) fn give_back_sim_pool(pool: SimPool) {
    POOLS.give_back(pool.extra_workers(), pool);
}

/// Idle pools currently parked in the registry (tests/diagnostics).
pub fn idle_sim_pools() -> usize {
    POOLS.idle_count()
}

impl SimPool {
    fn spawn(extra_workers: usize) -> SimPool {
        let shared = Arc::new(Shared {
            job: Mutex::new(JobSlot {
                generation: 0,
                grid_blocks: 0,
                exec: None,
                engaged: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cursor: AtomicUsize::new(0),
            remaining: AtomicUsize::new(0),
            panics: Mutex::new(Vec::new()),
        });
        let handles = (0..extra_workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("gpusim-worker".into())
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn gpusim worker")
            })
            .collect();
        SimPool { shared, handles }
    }

    /// Parked worker threads (the lease key).
    pub(crate) fn extra_workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs `exec(b, table)` for every `b in 0..grid_blocks` across the pool
    /// plus the calling thread, which contributes `caller_table` as its
    /// scratch. Blocks are claimed dynamically; panicking blocks are drained,
    /// and the earliest-block payload is re-raised once the launch settles.
    pub(crate) fn run_job(
        &self,
        grid_blocks: usize,
        exec: &BlockExec<'_>,
        caller_table: &mut StepTable,
    ) {
        if grid_blocks == 0 {
            return;
        }
        if indigo_obs::enabled() {
            indigo_obs::Counter::SimPoolJobs.incr();
        }
        // Safety: see module docs — the pointee outlives the job because
        // run_job settles (remaining == 0, engaged == 0) before returning.
        let erased = ErasedExec(unsafe {
            std::mem::transmute::<*const BlockExec<'_>, *const BlockExec<'static>>(
                exec as *const BlockExec<'_>,
            )
        });
        {
            let mut job = self.shared.job.lock().unwrap_or_else(|e| e.into_inner());
            debug_assert!(job.exec.is_none(), "pool lease is exclusive");
            self.shared.cursor.store(0, Ordering::Relaxed);
            self.shared.remaining.store(grid_blocks, Ordering::Relaxed);
            job.generation += 1;
            job.grid_blocks = grid_blocks;
            job.exec = Some(erased);
        }
        // Waking more workers than there are blocks left (after the caller
        // takes its share) would only produce claim-miss wakeups.
        let wake = self.handles.len().min(grid_blocks.saturating_sub(1));
        for _ in 0..wake {
            self.shared.work_cv.notify_one();
        }

        // the caller is worker zero
        drain(&self.shared, erased, grid_blocks, caller_table);

        let mut job = self.shared.job.lock().unwrap_or_else(|e| e.into_inner());
        while self.shared.remaining.load(Ordering::Acquire) != 0 || job.engaged != 0 {
            job = self
                .shared
                .done_cv
                .wait(job)
                .unwrap_or_else(|e| e.into_inner());
        }
        job.exec = None;
        drop(job);

        let mut panics = {
            let mut p = self.shared.panics.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *p)
        };
        if !panics.is_empty() {
            // deterministic re-raise: the earliest block's payload, exactly
            // like the serial loop would have surfaced it first
            panics.sort_by_key(|(b, _)| *b);
            std::panic::resume_unwind(panics.remove(0).1);
        }
    }
}

impl Drop for SimPool {
    fn drop(&mut self) {
        {
            let mut job = self.shared.job.lock().unwrap_or_else(|e| e.into_inner());
            job.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Claims and executes blocks until the cursor runs dry. Panics are recorded
/// against their block index; the worker keeps draining so every block of
/// the launch completes (successfully or with a recorded payload).
fn drain(shared: &Shared, exec: ErasedExec, grid_blocks: usize, table: &mut StepTable) {
    loop {
        let b = shared.cursor.fetch_add(1, Ordering::Relaxed);
        if b >= grid_blocks {
            return;
        }
        // Safety: a successful claim means this block has not executed, so
        // `remaining > 0` holds until our decrement below — run_job is still
        // inside the launch and the pointee is alive.
        let f = unsafe { &*exec.0 };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(b, table))) {
            shared
                .panics
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push((b, payload));
        }
        if shared.remaining.fetch_sub(1, Ordering::Release) == 1 {
            // last block: take the lock so the waiter is either parked on
            // done_cv or about to re-check, then wake it
            drop(shared.job.lock().unwrap_or_else(|e| e.into_inner()));
            shared.done_cv.notify_all();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut table = StepTable::new();
    let mut seen = 0u64;
    loop {
        let (generation, exec, grid_blocks) = {
            let mut job = shared.job.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if job.shutdown {
                    return;
                }
                if job.generation != seen {
                    if let Some(exec) = job.exec {
                        job.engaged += 1;
                        if indigo_obs::enabled() {
                            indigo_obs::Counter::SimPoolEngagements.incr();
                        }
                        break (job.generation, exec, job.grid_blocks);
                    }
                    // the job we were woken for already settled; don't
                    // re-engage with it when it is long gone
                    seen = job.generation;
                }
                job = shared.work_cv.wait(job).unwrap_or_else(|e| e.into_inner());
            }
        };
        seen = generation;
        drain(shared, exec, grid_blocks, &mut table);
        let mut job = shared.job.lock().unwrap_or_else(|e| e.into_inner());
        job.engaged -= 1;
        let idle = job.engaged == 0;
        drop(job);
        if idle {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_runs_every_block_exactly_once() {
        let pool = lease_sim_pool(2);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let mut table = StepTable::new();
        for _ in 0..50 {
            pool.run_job(
                hits.len(),
                &|b, _t| {
                    hits[b].fetch_add(1, Ordering::Relaxed);
                },
                &mut table,
            );
        }
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 50));
        give_back_sim_pool(pool);
    }

    #[test]
    fn panicking_block_drains_and_reraises_earliest() {
        let pool = lease_sim_pool(2);
        let done: Vec<AtomicUsize> = (0..40).map(|_| AtomicUsize::new(0)).collect();
        let mut table = StepTable::new();
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.run_job(
                done.len(),
                &|b, _t| {
                    if b == 7 || b == 23 {
                        std::panic::panic_any(format!("block {b} failed"));
                    }
                    done[b].fetch_add(1, Ordering::Relaxed);
                },
                &mut table,
            );
        }))
        .unwrap_err();
        // earliest-index payload wins, deterministically
        assert_eq!(err.downcast_ref::<String>().unwrap(), "block 7 failed");
        // and every non-panicking block still ran: the launch drained
        for (b, d) in done.iter().enumerate() {
            let want = usize::from(b != 7 && b != 23);
            assert_eq!(d.load(Ordering::Relaxed), want, "block {b}");
        }
        // the pool survives for the next job
        pool.run_job(
            done.len(),
            &|b, _t| {
                done[b].fetch_add(1, Ordering::Relaxed);
            },
            &mut table,
        );
        give_back_sim_pool(pool);
    }

    #[test]
    fn lease_reuses_parked_pools() {
        let before = idle_sim_pools();
        let pool = lease_sim_pool(3);
        let mut table = StepTable::new();
        pool.run_job(5, &|_b, _t| {}, &mut table);
        give_back_sim_pool(pool);
        assert_eq!(idle_sim_pools(), before + 1);
        let pool = lease_sim_pool(3); // the same parked threads, no respawn
        assert_eq!(pool.extra_workers(), 3);
        assert_eq!(idle_sim_pools(), before);
        give_back_sim_pool(pool);
    }

    #[test]
    fn single_block_jobs_run_on_the_caller() {
        // grid_blocks == 1 must not wake anyone: the caller claims the only
        // block itself (workers.min(grid_blocks) == 1)
        let pool = lease_sim_pool(4);
        let caller = std::thread::current().id();
        let mut table = StepTable::new();
        for _ in 0..10 {
            pool.run_job(
                1,
                &|_b, _t| assert_eq!(std::thread::current().id(), caller),
                &mut table,
            );
        }
        give_back_sim_pool(pool);
    }
}
