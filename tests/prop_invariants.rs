//! Property-based tests (proptest) on the core data structures and on the
//! central invariant of the whole suite: *every style variant computes the
//! same answer as the serial oracle on arbitrary graphs*.

use indigo2::core::{run_variant, verify, GraphInput, Target};
use indigo2::graph::{gen, Csr, GraphBuilder};
use indigo2::gpusim::rtx3090;
use indigo2::styles::{enumerate, Model};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Strategy: an arbitrary undirected graph as (n, edge list).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..120))
    })
}

fn build(n: usize, edges: &[(u32, u32)]) -> Csr {
    let mut b = GraphBuilder::new(n);
    for &(a, c) in edges {
        b.add_edge(a, c);
    }
    b.build("prop")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Builder postconditions: symmetric, sorted, deduplicated, loop-free.
    #[test]
    fn builder_invariants((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        prop_assert!(g.is_symmetric());
        let expected: BTreeSet<(u32, u32)> = edges
            .iter()
            .filter(|(a, c)| a != c)
            .flat_map(|&(a, c)| [(a, c), (c, a)])
            .collect();
        let actual: BTreeSet<(u32, u32)> =
            g.iter_edges().map(|(v, u, _)| (v, u)).collect();
        prop_assert_eq!(actual, expected);
        for v in 0..n as u32 {
            prop_assert!(g.neighbors(v).windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// COO derivation preserves the edge multiset and order.
    #[test]
    fn coo_matches_csr((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let coo = indigo2::graph::Coo::from_csr(&g);
        prop_assert_eq!(coo.num_edges(), g.num_edges());
        for (i, (v, u, _)) in g.iter_edges().enumerate() {
            prop_assert_eq!((coo.src(i), coo.dst(i)), (v, u));
        }
    }

    /// Synthetic weights are direction-symmetric and in range.
    #[test]
    fn weights_symmetric((n, edges) in arb_graph()) {
        let g = build(n, &edges).with_synthetic_weights();
        for v in 0..n as u32 {
            let range = g.neighbor_range(v);
            for (off, &u) in g.neighbors(v).iter().enumerate() {
                let w = g.weights()[range.start + off];
                prop_assert!((1..=indigo2::graph::weights::MAX_WEIGHT).contains(&w));
                // find the reverse edge's weight
                let rr = g.neighbor_range(u);
                let pos = g.neighbors(u).binary_search(&v).unwrap();
                prop_assert_eq!(w, g.weights()[rr.start + pos]);
            }
        }
    }

    /// Graph stats internal consistency on arbitrary graphs.
    #[test]
    fn stats_consistency((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let s = indigo2::graph::stats::GraphStats::compute(&g);
        prop_assert_eq!(s.nodes, n);
        prop_assert_eq!(s.edges, g.num_edges());
        prop_assert!(s.components >= 1);
        prop_assert!(s.max_degree <= n.saturating_sub(1));
        prop_assert!(s.avg_degree <= s.max_degree as f64 + 1e-12);
    }

    /// The headline invariant: a pseudo-random style variant computes the
    /// oracle answer on an arbitrary graph (weights included), across all
    /// three models.
    #[test]
    fn random_variant_matches_oracle(
        (n, edges) in arb_graph(),
        pick in 0usize..usize::MAX,
    ) {
        let input = GraphInput::new(build(n, &edges));
        let suite = enumerate::full_suite();
        let cfg = &suite[pick % suite.len()];
        let target = match cfg.model {
            Model::Cuda => Target::gpu(rtx3090()),
            _ => Target::cpu(2),
        };
        let r = run_variant(cfg, &input, &target);
        prop_assert!(
            verify::check(cfg, &input, &r.output).is_ok(),
            "{} failed on a {}-vertex graph",
            cfg.name(),
            n
        );
    }

    /// G(n, p) generator produces valid, self-consistent graphs.
    #[test]
    fn gnp_valid(n in 2usize..60, p in 0.0f64..0.3, seed in 0u64..1000) {
        let g = gen::gnp(n, p, seed);
        g.validate();
        prop_assert!(g.is_symmetric());
        prop_assert_eq!(g.num_nodes(), n);
    }
}
