//! Serving-path perf probe (DESIGN.md §7.9).
//!
//! Runs a short open-loop load-generator comparison — the pre-PR-8
//! connection-per-request path vs the batched keep-alive reactor path —
//! against two in-process servers, and reports the headline numbers:
//! saturation throughput per mode, the batched/unbatched speedup, and the
//! coordinated-omission-safe p99.
//!
//! `serve_perf` prints the JSON record to stdout. With `--check
//! <baseline.json>` it compares against the committed baseline: throughput
//! (and the speedup ratio) regressing more than 30% fails, more than 10%
//! warns; p99 inflating past the same gates likewise. The speedup must
//! also clear the 1.5× floor the batched path promises — on an absolute
//! basis, not relative to the baseline. Unlike `cpu_perf`, every field
//! here *is* wall-clock; the gate survives runner noise because the
//! measured margins are an order of magnitude wider than the thresholds.

use indigo_serve::loadgen::{run_loadgen, LoadMix, LoadgenOptions, LoadgenReport};
use std::time::Duration;

/// The batched path must beat the unbatched path by at least this factor
/// in saturation throughput, on any machine.
const SPEEDUP_FLOOR: f64 = 1.5;

fn measure() -> LoadgenReport {
    let opts = LoadgenOptions {
        rps: 300.0,
        conns: 4,
        duration: Duration::from_millis(1_500),
        saturation: Duration::from_secs(1),
        mix: LoadMix::Mixed,
        workers: 2,
        queue: 64,
    };
    match run_loadgen(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve_perf: loadgen run invalid: {e}");
            std::process::exit(1);
        }
    }
}

fn emit(r: &LoadgenReport) -> String {
    format!(
        "{{\n  \"version\": 1,\n  \"speedup\": {:.3},\n  \
         \"unbatched_saturation_rps\": {:.1},\n  \
         \"batched_saturation_rps\": {:.1},\n  \
         \"unbatched_p99_ms\": {:.3},\n  \"batched_p99_ms\": {:.3}\n}}\n",
        r.speedup,
        r.unbatched.saturation_rps,
        r.batched.saturation_rps,
        r.unbatched.p99_ms,
        r.batched.p99_ms,
    )
}

/// Pulls `"field": <number>` off the baseline text (the workspace is
/// dependency-free, so no serde).
fn field(text: &str, name: &str) -> Option<f64> {
    let tag = format!("\"{name}\": ");
    let at = text.find(&tag)? + tag.len();
    let rest = &text[at..];
    let end = rest
        .find(|ch: char| !(ch.is_ascii_digit() || ch == '.' || ch == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares against the committed baseline. Returns the hard-failure
/// count: a throughput (or speedup) drop > 30%, a p99 inflation > 30%, or
/// a speedup below the absolute floor.
fn check(r: &LoadgenReport, baseline_path: &str) -> usize {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve_perf: cannot read baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let mut failures = 0;
    if r.speedup < SPEEDUP_FLOOR {
        eprintln!(
            "FAIL  speedup {:.2}x is below the {SPEEDUP_FLOOR}x floor",
            r.speedup
        );
        failures += 1;
    }
    // lower-is-worse fields: throughput and the speedup ratio
    let mut gate_drop = |what: &str, old: f64, new: f64| {
        if old <= 0.0 {
            return;
        }
        let drop = (old - new) / old;
        if drop > 0.30 {
            eprintln!(
                "FAIL  {what} dropped {:.1}% (baseline {old:.1}, now {new:.1})",
                drop * 100.0
            );
            failures += 1;
        } else if drop > 0.10 {
            eprintln!(
                "WARN  {what} dropped {:.1}% (baseline {old:.1}, now {new:.1})",
                drop * 100.0
            );
        }
    };
    if let Some(old) = field(&baseline, "speedup") {
        gate_drop("speedup", old, r.speedup);
    }
    if let Some(old) = field(&baseline, "batched_saturation_rps") {
        gate_drop("batched_saturation_rps", old, r.batched.saturation_rps);
    }
    // higher-is-worse field: the batched tail. The gates carry a small
    // absolute grace on top of the relative one — a millisecond-scale p99
    // moves by scheduler quanta, and a 30%-of-1ms gate would flake
    if let Some(old) = field(&baseline, "batched_p99_ms") {
        if old > 0.0 {
            let new = r.batched.p99_ms;
            if new > old * 1.30 + 1.0 {
                eprintln!(
                    "FAIL  batched_p99_ms rose past 130% + 1 ms (baseline {old:.3}, now {new:.3})"
                );
                failures += 1;
            } else if new > old * 1.10 + 0.25 {
                eprintln!("WARN  batched_p99_ms rose past 110% + 0.25 ms (baseline {old:.3}, now {new:.3})");
            }
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let report = measure();
    match args.get(1).map(String::as_str) {
        None => print!("{}", emit(&report)),
        Some("--check") => {
            let Some(baseline) = args.get(2) else {
                eprintln!("usage: serve_perf [--check baseline.json]");
                std::process::exit(1);
            };
            let failures = check(&report, baseline);
            if failures > 0 {
                eprintln!("serve_perf: {failures} serving-perf regression(s) past the gate");
                std::process::exit(2);
            }
            eprintln!(
                "serve_perf: serving perf within gates ({:.1}x speedup, \
                 batched {:.0} rps, p99 {:.2} ms)",
                report.speedup, report.batched.saturation_rps, report.batched.p99_ms
            );
        }
        Some(other) => {
            eprintln!("serve_perf: unknown argument {other}");
            std::process::exit(1);
        }
    }
}
