//! CPU-model kernels (OpenMP-analog and C++-threads-analog).
//!
//! [`CpuExec`] packages the model-specific pieces every kernel needs: the
//! parallel-for (with the §2.11 / §2.12 schedule from the variant's
//! [`StyleConfig`]) and the update-style dispatch ([`MinOps`]) including the
//! OpenMP critical-section path for min/max (§5.3.1).

pub mod mis;
pub mod pr;
pub mod relax;
pub mod relax64;
pub mod tc;

use indigo_cancel::CancelToken;
use indigo_exec::cpp::{CppSched, CppThreads};
use indigo_exec::sync::MinOps;
use indigo_exec::{shared_omp_pool, OmpPool, Schedule};
use indigo_styles::{CppSchedule, Model, OmpSchedule, StyleConfig, Update};
use std::sync::Arc;

/// A ready-to-run CPU execution context for one variant.
pub struct CpuExec {
    model: Model,
    threads: usize,
    omp: Option<Arc<OmpPool>>,
    omp_sched: Schedule,
    cpp_sched: CppSched,
    cancel: Option<CancelToken>,
}

impl CpuExec {
    /// Builds the context for `cfg` with `threads` workers. Panics if `cfg`
    /// is a GPU variant.
    ///
    /// Omp-model contexts borrow a process-wide cached pool
    /// ([`shared_omp_pool`]) instead of spawning a team per variant: the
    /// harness runs hundreds of thousands of measurement cells and thread
    /// spawn-up is overhead, not kernel time.
    pub fn new(cfg: &StyleConfig, threads: usize) -> Self {
        assert!(cfg.model.is_cpu(), "CpuExec needs a CPU-model variant");
        let omp_sched = match cfg.omp_schedule {
            Some(OmpSchedule::Dynamic) => Schedule::dynamic(),
            _ => Schedule::Default,
        };
        let cpp_sched = match cfg.cpp_schedule {
            Some(CppSchedule::Cyclic) => CppSched::Cyclic,
            _ => CppSched::Blocked,
        };
        CpuExec {
            model: cfg.model,
            threads,
            omp: (cfg.model == Model::Omp).then(|| shared_omp_pool(threads)),
            omp_sched,
            cpp_sched,
            cancel: None,
        }
    }

    /// Attaches a cooperative [`CancelToken`]: every [`CpuExec::pfor`]
    /// polls it at scheduling boundaries (workers drain, the calling thread
    /// raises `Cancelled` after the barrier). Since the algorithm drivers
    /// issue one `pfor` per convergence iteration, this makes even a
    /// non-terminating kernel cancellable at iteration granularity.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The programming model this context realizes.
    pub fn model(&self) -> Model {
        self.model
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Model- and schedule-appropriate parallel for over `0..n`;
    /// `body(i, tid)`.
    pub fn pfor<F>(&self, n: usize, body: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        match self.model {
            Model::Omp => self
                .omp
                .as_ref()
                .expect("omp pool present for Omp model")
                .parallel_for_with(n, self.omp_sched, self.cancel.as_ref(), body),
            Model::Cpp => CppThreads::new(self.threads).parallel_for_with(
                n,
                self.cpp_sched,
                self.cancel.as_ref(),
                body,
            ),
            Model::Cuda => unreachable!("CpuExec is never built for GPU variants"),
        }
    }

    /// The §2.5 update dispatch for this model: the OpenMP model's RMW
    /// min/max must use the critical section (§5.3.1), the C++ model gets
    /// CAS-loop atomics, and read-write is plain loads/stores everywhere.
    pub fn min_ops(&self, update: Update) -> MinOps {
        match (update, self.model) {
            (Update::ReadWrite, _) => MinOps::ReadWrite,
            (Update::ReadModifyWrite, Model::Omp) => MinOps::RmwCritical,
            (Update::ReadModifyWrite, _) => MinOps::RmwAtomic,
        }
    }

    /// Whether worklist-stamp maxes must take the critical path (Omp model).
    pub fn critical_stamps(&self) -> bool {
        self.model == Model::Omp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indigo_styles::Algorithm;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn omp_exec_runs_bodies() {
        let cfg = StyleConfig::baseline(Algorithm::Bfs, Model::Omp);
        let exec = CpuExec::new(&cfg, 2);
        let count = AtomicUsize::new(0);
        exec.pfor(100, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn cpp_exec_runs_bodies() {
        let mut cfg = StyleConfig::baseline(Algorithm::Bfs, Model::Cpp);
        cfg.cpp_schedule = Some(CppSchedule::Cyclic);
        let exec = CpuExec::new(&cfg, 3);
        let count = AtomicUsize::new(0);
        exec.pfor(37, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn min_ops_dispatch_matches_models() {
        let omp = CpuExec::new(&StyleConfig::baseline(Algorithm::Sssp, Model::Omp), 1);
        let cpp = CpuExec::new(&StyleConfig::baseline(Algorithm::Sssp, Model::Cpp), 1);
        assert_eq!(omp.min_ops(Update::ReadModifyWrite), MinOps::RmwCritical);
        assert_eq!(cpp.min_ops(Update::ReadModifyWrite), MinOps::RmwAtomic);
        assert_eq!(omp.min_ops(Update::ReadWrite), MinOps::ReadWrite);
        assert!(omp.critical_stamps());
        assert!(!cpp.critical_stamps());
    }

    #[test]
    #[should_panic(expected = "CPU-model")]
    fn rejects_gpu_variant() {
        CpuExec::new(&StyleConfig::baseline(Algorithm::Bfs, Model::Cuda), 1);
    }
}
