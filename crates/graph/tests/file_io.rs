//! File-backed loader tests: write real files to a temp dir and load them
//! back through the path-based entry points.

use indigo_graph::gen::toy;
use indigo_graph::{io, Csr};
use std::io::Write;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("indigo-io-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn dimacs_file_round_trip() {
    let g = toy::weighted_diamond();
    let path = tmp("diamond.gr");
    let mut f = std::fs::File::create(&path).unwrap();
    io::write_dimacs_gr(&g, &mut f).unwrap();
    drop(f);
    let loaded = io::load_dimacs_gr(&path).unwrap();
    assert_eq!(loaded.num_nodes(), g.num_nodes());
    assert_eq!(loaded.num_edges(), g.num_edges());
    assert_eq!(loaded.name(), "diamond");
    for v in 0..g.num_nodes() as u32 {
        assert_eq!(loaded.neighbors(v), g.neighbors(v));
        assert_eq!(loaded.neighbor_weights(v), g.neighbor_weights(v));
    }
}

#[test]
fn snap_edge_list_file() {
    let path = tmp("snap.txt");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "# Directed graph: test").unwrap();
    writeln!(f, "# FromNodeId\tToNodeId").unwrap();
    writeln!(f, "0\t1").unwrap();
    writeln!(f, "1\t2").unwrap();
    writeln!(f, "2\t0").unwrap();
    writeln!(f, "0\t1").unwrap(); // duplicate must collapse
    drop(f);
    let g = io::load_edge_list(&path).unwrap();
    assert_eq!(g.num_nodes(), 3);
    assert_eq!(g.num_edges(), 6); // triangle
    assert!(g.is_symmetric());
}

#[test]
fn matrix_market_file() {
    let path = tmp("adj.mtx");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "%%MatrixMarket matrix coordinate pattern symmetric").unwrap();
    writeln!(f, "% a comment").unwrap();
    writeln!(f, "4 4 3").unwrap();
    writeln!(f, "1 2").unwrap();
    writeln!(f, "2 3").unwrap();
    writeln!(f, "3 4").unwrap();
    drop(f);
    let g = io::load_matrix_market(&path).unwrap();
    assert_eq!(g.num_nodes(), 4);
    assert_eq!(g.num_edges(), 6); // path of 3 undirected edges
}

#[test]
fn missing_file_is_io_error() {
    let err = io::load_dimacs_gr("/nonexistent/xyz.gr").unwrap_err();
    assert!(matches!(err, io::LoadError::Io(_)));
}

#[test]
fn loaded_graph_is_usable_as_algorithm_input() {
    // end-to-end: generated graph -> file -> loaded -> validated CSR
    let g = indigo_graph::gen::gnp(50, 0.1, 3).with_synthetic_weights();
    let path = tmp("gnp.gr");
    let mut f = std::fs::File::create(&path).unwrap();
    io::write_dimacs_gr(&g, &mut f).unwrap();
    drop(f);
    let loaded: Csr = io::load_dimacs_gr(&path).unwrap();
    loaded.validate();
    assert!(loaded.is_symmetric());
    assert_eq!(loaded.num_edges(), g.num_edges());
}
