//! Distribution summaries: the textual analog of the paper's boxen
//! (letter-value) plots, plus geometric means and Pearson correlation.

/// Letter-value summary of a set of positive ratios/throughputs.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// 12.5th percentile (outer letter value).
    pub p12: f64,
    /// Lower quartile.
    pub p25: f64,
    /// Median — the line in the paper's boxen plots.
    pub median: f64,
    /// Upper quartile.
    pub p75: f64,
    /// 87.5th percentile.
    pub p87: f64,
    /// Maximum.
    pub max: f64,
    /// Fraction of samples above 1.0 (meaningful for ratios).
    pub frac_above_one: f64,
}

impl Summary {
    /// Computes the summary; returns `None` for an empty sample.
    pub fn compute(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(f64::total_cmp);
        let q = |p: f64| -> f64 {
            let idx = p * (v.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            let frac = idx - lo as f64;
            v[lo] * (1.0 - frac) + v[hi] * frac
        };
        let above = v.iter().filter(|&&x| x > 1.0).count();
        let &max = v.last()?;
        Some(Summary {
            n: v.len(),
            min: v[0],
            p12: q(0.125),
            p25: q(0.25),
            median: q(0.5),
            p75: q(0.75),
            p87: q(0.875),
            max,
            frac_above_one: above as f64 / v.len() as f64,
        })
    }

    /// One formatted table row.
    pub fn row(&self, label: &str) -> String {
        format!(
            "{label:<18} {:>5}  {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}  {:>5.1}%",
            self.n,
            self.min,
            self.p12,
            self.p25,
            self.median,
            self.p75,
            self.p87,
            self.max,
            100.0 * self.frac_above_one
        )
    }

    /// Header matching [`Summary::row`].
    pub fn header() -> String {
        format!(
            "{:<18} {:>5}  {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}  {:>6}",
            "group", "n", "min", "p12.5", "p25", "median", "p75", "p87.5", "max", ">1.0"
        )
    }

    /// A log10-scale ASCII strip from min to max with quartile box and
    /// median mark — the one-line boxen rendering used in the reports.
    pub fn strip(&self, lo: f64, hi: f64, width: usize) -> String {
        let lo = lo.max(1e-12).log10();
        let hi = hi.max(1e-12).log10().max(lo + 1e-9);
        let pos = |x: f64| -> usize {
            let t = (x.max(1e-12).log10() - lo) / (hi - lo);
            ((t.clamp(0.0, 1.0)) * (width.saturating_sub(1)) as f64).round() as usize
        };
        let mut chars = vec![' '; width];
        let mut fill = |from: usize, to: usize, c: char| {
            for slot in &mut chars[from..=to] {
                *slot = c;
            }
        };
        // paint from outermost to innermost: the inclusive `~` whisker fills
        // share their inner endpoint with the `=` box, so the box must be
        // drawn after them or its p25/p75 edge cells get overdrawn
        fill(pos(self.min), pos(self.max), '-');
        fill(pos(self.p12), pos(self.p25), '~');
        fill(pos(self.p75), pos(self.p87), '~');
        fill(pos(self.p25), pos(self.p75), '=');
        chars[pos(self.median)] = '|';
        chars.into_iter().collect()
    }
}

/// Geometric mean of positive values (the paper's Table 6 aggregate).
pub fn geomean(values: &[f64]) -> f64 {
    let vals: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| *v > 0.0 && v.is_finite())
        .collect();
    if vals.is_empty() {
        return f64::NAN;
    }
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

/// Pearson correlation coefficient (§5.13).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_quantiles_exact_on_small_sets() {
        let s = Summary::compute(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p25, 2.0);
        assert_eq!(s.p75, 4.0);
        assert!((s.frac_above_one - 0.8).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::compute(&[]).is_none());
        assert!(Summary::compute(&[f64::NAN]).is_none());
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::compute(&[2.5]).unwrap();
        assert_eq!(s.median, 2.5);
        assert_eq!(s.min, s.max);
    }

    #[test]
    fn strip_marks_median() {
        let s = Summary::compute(&[0.1, 1.0, 10.0]).unwrap();
        let strip = s.strip(0.01, 100.0, 41);
        assert_eq!(strip.len(), 41);
        assert!(strip.contains('|'));
        assert!(strip.contains('='));
    }

    #[test]
    fn strip_box_edges_survive_whiskers() {
        // quartile box edges must read '=' (or the median '|'), not be
        // overdrawn by the inclusive '~' whisker fills that end there
        let s = Summary::compute(&[0.1, 0.3, 1.0, 3.0, 10.0]).unwrap();
        let strip: Vec<char> = s.strip(0.01, 100.0, 61).chars().collect();
        let lo = 0.01f64.log10();
        let hi = 100f64.log10();
        let pos = |x: f64| ((x.log10() - lo) / (hi - lo) * 60.0).round() as usize;
        for q in [s.p25, s.p75] {
            let c = strip[pos(q)];
            assert!(c == '=' || c == '|', "box edge at {q} drawn as {c:?}");
        }
        assert!(strip.contains(&'~'));
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
        // zero/negative/non-finite values are excluded, not poisoning
        assert!((geomean(&[4.0, 0.0, f64::INFINITY]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_signs() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[5.0, 5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn row_and_header_align() {
        let s = Summary::compute(&[1.0, 2.0]).unwrap();
        // both render without panicking and start with the label column
        assert!(Summary::header().starts_with("group"));
        assert!(s.row("x").starts_with('x'));
    }
}
