//! Shared-memory synchronization primitives, dispatched by style.
//!
//! The kernels update vertex values in one of two styles (§2.5): read-write
//! (separate atomic load and store, sound only for monotonic updates) and
//! read-modify-write (a single fused atomic such as `fetch_min`). On top of
//! that, the *OpenMP model* has no atomic min/max — GCC's `#pragma omp
//! atomic` supports only arithmetic updates — so its RMW path must go
//! through a `critical` section (one global mutex), which the paper calls
//! out as the source of several of its largest CPU slowdowns (§5.3.1,
//! §5.10). [`MinOps`] packages those three behaviors behind one call site.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// The single global `#pragma omp critical` lock.
///
/// OpenMP's unnamed `critical` construct is one program-wide mutual
/// exclusion region; modeling it with one global mutex (not striped, not
/// per-address) is faithful and is what makes the critical styles slow.
static OMP_CRITICAL: Mutex<()> = Mutex::new(());

/// Runs `f` inside the global critical section.
#[inline]
pub fn omp_critical<R>(f: impl FnOnce() -> R) -> R {
    let _guard = OMP_CRITICAL.lock().unwrap_or_else(|e| e.into_inner());
    // lockset bookkeeping for the sanitizer: accesses made while the
    // critical section is held classify as synchronized (no-op when the
    // `sanitize` feature is off; the guard survives unwinds)
    struct Depth;
    impl Drop for Depth {
        fn drop(&mut self) {
            crate::sanitize::critical_exit();
        }
    }
    crate::sanitize::critical_enter();
    let _depth = Depth;
    f()
}

/// CAS-loop `fetch_min` (C++ `atomic` style). Returns the previous value.
#[inline]
pub fn fetch_min(cell: &AtomicU32, val: u32) -> u32 {
    let mut cur = cell.load(Ordering::Relaxed);
    while val < cur {
        match cell.compare_exchange_weak(cur, val, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(prev) => return prev,
            Err(now) => cur = now,
        }
    }
    cur
}

/// CAS-loop `fetch_max`. Returns the previous value.
#[inline]
pub fn fetch_max(cell: &AtomicU32, val: u32) -> u32 {
    let mut cur = cell.load(Ordering::Relaxed);
    while val > cur {
        match cell.compare_exchange_weak(cur, val, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(prev) => return prev,
            Err(now) => cur = now,
        }
    }
    cur
}

/// An atomic `f32` built on `AtomicU32` bit transmutation — the CPU analog
/// of CUDA's `atomicAdd(float*)`, needed by the PR codes.
#[derive(Debug, Default)]
pub struct AtomicF32 {
    bits: AtomicU32,
}

impl AtomicF32 {
    /// Creates a cell holding `v`.
    pub fn new(v: f32) -> Self {
        AtomicF32 {
            bits: AtomicU32::new(v.to_bits()),
        }
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self) -> f32 {
        f32::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, v: f32) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// CAS-loop `fetch_add`. Returns the previous value.
    #[inline]
    pub fn fetch_add(&self, v: f32) -> f32 {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let new = (f32::from_bits(cur) + v).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(prev) => return f32::from_bits(prev),
                Err(now) => cur = now,
            }
        }
    }
}

/// How a kernel performs its conditional monotonic updates — the §2.5 style
/// crossed with the model's synchronization capabilities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MinOps {
    /// Read-write style (Listing 5a): atomic load, compare, atomic store.
    /// Sound for monotonic updates; can lose races but the algorithm
    /// re-converges (§2.5).
    ReadWrite,
    /// RMW with a fast hardware CAS loop (C++ model, Listing 5b).
    RmwAtomic,
    /// RMW through the global `omp critical` lock (OpenMP model — no atomic
    /// min/max exists there).
    RmwCritical,
}

impl MinOps {
    /// `dist[idx] = min(dist[idx], val)`; returns `true` if this call
    /// lowered the stored value (used to populate worklists).
    ///
    /// This is the CPU models' semantic *relaxation update* site: under the
    /// `sanitize` feature each call reports whether it used a fused RMW or
    /// the load/compare/store split, the split's accesses feed the conflict
    /// detector, and [`crate::sanitize::mutate_drop_atomic`] can force the
    /// RMW-atomic style onto the split for mutation tests.
    #[inline]
    pub fn min_update(self, cell: &AtomicU32, val: u32) -> bool {
        use crate::sanitize::{self, AccessOp};
        let addr = cell as *const AtomicU32 as u64;
        let split = |note_rmw: bool| {
            sanitize::note_update(note_rmw);
            sanitize::record(sanitize::cpu_tid(), addr, AccessOp::Load);
            let old = cell.load(Ordering::Relaxed);
            if val < old {
                sanitize::record(sanitize::cpu_tid(), addr, AccessOp::Store(val));
                cell.store(val, Ordering::Relaxed);
                true
            } else {
                false
            }
        };
        match self {
            MinOps::ReadWrite => split(false),
            MinOps::RmwAtomic => {
                if sanitize::mutate_drop_atomic() {
                    // mutation test: the RMW label's atomic is dropped and
                    // the update degrades to the unsynchronized split
                    return split(false);
                }
                sanitize::note_update(true);
                sanitize::record(sanitize::cpu_tid(), addr, AccessOp::AtomicRmw);
                fetch_min(cell, val) > val
            }
            // inside the critical section the split is lock-protected; the
            // sanitizer classifies its accesses as synchronized
            MinOps::RmwCritical => omp_critical(|| split(true)),
        }
    }

    /// `cell = max(cell, val)`; returns the previous value (Listing 3b uses
    /// this for the no-duplicates worklist stamp).
    #[inline]
    pub fn max_update(self, cell: &AtomicU32, val: u32) -> u32 {
        use crate::sanitize::{self, AccessOp};
        let addr = cell as *const AtomicU32 as u64;
        let split = || {
            sanitize::record(sanitize::cpu_tid(), addr, AccessOp::Load);
            let old = cell.load(Ordering::Relaxed);
            if val > old {
                sanitize::record(sanitize::cpu_tid(), addr, AccessOp::Store(val));
                cell.store(val, Ordering::Relaxed);
            }
            old
        };
        match self {
            MinOps::ReadWrite => split(),
            MinOps::RmwAtomic => {
                sanitize::record(sanitize::cpu_tid(), addr, AccessOp::AtomicRmw);
                fetch_max(cell, val)
            }
            MinOps::RmwCritical => omp_critical(split),
        }
    }
}

/// Reinterprets a `&mut [u32]` as atomics for the duration of a parallel
/// phase. Sound: `AtomicU32` has the same layout as `u32`, and the mutable
/// borrow guarantees exclusivity for the lifetime.
pub fn as_atomic_u32(data: &mut [u32]) -> &[AtomicU32] {
    unsafe { &*(data as *mut [u32] as *const [AtomicU32]) }
}

/// Allocates a fresh atomic array initialized to `init`.
pub fn atomic_vec(len: usize, init: u32) -> Vec<AtomicU32> {
    (0..len).map(|_| AtomicU32::new(init)).collect()
}

/// Snapshots an atomic array into a plain vector (sequential phase only).
pub fn snapshot(cells: &[AtomicU32]) -> Vec<u32> {
    cells.iter().map(|c| c.load(Ordering::Relaxed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn fetch_min_lowers_only() {
        let c = AtomicU32::new(10);
        assert_eq!(fetch_min(&c, 5), 10);
        assert_eq!(c.load(Ordering::Relaxed), 5);
        assert_eq!(fetch_min(&c, 7), 5); // no change
        assert_eq!(c.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn fetch_max_raises_only() {
        let c = AtomicU32::new(10);
        assert_eq!(fetch_max(&c, 20), 10);
        assert_eq!(c.load(Ordering::Relaxed), 20);
        assert_eq!(fetch_max(&c, 3), 20);
        assert_eq!(c.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn atomic_f32_add_accumulates() {
        let c = AtomicF32::new(1.5);
        assert_eq!(c.fetch_add(2.5), 1.5);
        assert_eq!(c.load(), 4.0);
        c.store(0.0);
        assert_eq!(c.load(), 0.0);
    }

    #[test]
    fn atomic_f32_concurrent_sum() {
        let c = AtomicF32::new(0.0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.fetch_add(1.0);
                    }
                });
            }
        });
        assert_eq!(c.load(), 4000.0);
    }

    #[test]
    fn min_ops_all_styles_agree_on_result() {
        for ops in [MinOps::ReadWrite, MinOps::RmwAtomic, MinOps::RmwCritical] {
            let c = AtomicU32::new(100);
            assert!(ops.min_update(&c, 40), "{ops:?}");
            assert!(!ops.min_update(&c, 60), "{ops:?}");
            assert_eq!(c.load(Ordering::Relaxed), 40, "{ops:?}");
        }
    }

    #[test]
    fn min_ops_concurrent_rmw_is_exact() {
        // RMW styles must never lose the global minimum under contention
        for ops in [MinOps::RmwAtomic, MinOps::RmwCritical] {
            let c = AtomicU32::new(u32::MAX);
            std::thread::scope(|s| {
                for t in 0..8u32 {
                    let c = &c;
                    s.spawn(move || {
                        for k in 0..500u32 {
                            ops.min_update(c, 1000 + (t * 500 + k) % 997);
                        }
                    });
                }
            });
            assert_eq!(c.load(Ordering::Relaxed), 1000);
        }
    }

    #[test]
    fn as_atomic_round_trip() {
        let mut data = vec![1u32, 2, 3];
        {
            let cells = as_atomic_u32(&mut data);
            cells[1].store(42, Ordering::Relaxed);
        }
        assert_eq!(data, vec![1, 42, 3]);
    }

    #[test]
    fn critical_section_is_exclusive() {
        let counter = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..250 {
                        omp_critical(|| {
                            // non-atomic read-modify-write protected by the lock
                            let v = counter.load(Ordering::Relaxed);
                            counter.store(v + 1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }
}
