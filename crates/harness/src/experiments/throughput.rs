//! Figures 9–11: raw throughputs of three-way style dimensions.
//!
//! Fig 9 plots thread/warp/block throughputs on the road map and the social
//! network; Fig 10 the three GPU reduction styles on PR/TC; Fig 11 the
//! three CPU reduction styles on PR/TC.

use super::Dataset;
use crate::report::Report;
use crate::stats::Summary;
use indigo_styles::{Algorithm, Model};

fn style_throughput_block(
    report: &mut Report,
    ds: &Dataset,
    dim: &str,
    options: &[&str],
    models: &[Model],
    algos: &[Algorithm],
    graphs: Option<&[&str]>,
) {
    report.csv_row("target,graph,algorithm,style,n,median_geps,min,max");
    let mut targets: Vec<String> = ds
        .measurements
        .iter()
        .filter(|m| models.contains(&m.cfg.model))
        .map(|m| m.target.clone())
        .collect();
    targets.sort();
    targets.dedup();
    for target in &targets {
        report.line(format!("-- {target} --"));
        report.line(Summary::header());
        for algo in algos {
            for &opt in options {
                let values: Vec<f64> = ds
                    .measurements
                    .iter()
                    .filter(|m| {
                        m.target == *target
                            && m.cfg.algorithm == *algo
                            && models.contains(&m.cfg.model)
                            && m.cfg.dimension_label(dim) == Some(opt)
                            && graphs.is_none_or(|gs| gs.contains(&m.graph))
                    })
                    .map(|m| m.geps)
                    .collect();
                if let Some(s) = Summary::compute(&values) {
                    report.line(s.row(&format!("{} {}", algo.abbrev(), opt)));
                    report.csv_row(format!(
                        "{target},{},{},{},{},{},{},{}",
                        graphs.map_or("all", |g| g[0]),
                        algo.abbrev(),
                        opt,
                        s.n,
                        s.median,
                        s.min,
                        s.max
                    ));
                }
            }
        }
    }
}

/// Fig 9: GPU throughputs of thread/warp/block granularity on the road map
/// (9a) and the social network (9b).
pub fn fig09(ds: &Dataset) -> Report {
    let mut r = Report::new(
        "fig09",
        "GPU throughputs of thread/warp/block granularity (§5.8)",
    );
    for (part, graph) in [("(a) road map", "road"), ("(b) social network", "soc-net")] {
        r.line(format!("{part} [{graph}]"));
        style_throughput_block(
            &mut r,
            ds,
            "granularity",
            &["thread", "warp", "block"],
            &[Model::Cuda],
            &Algorithm::ALL,
            Some(&[graph]),
        );
    }
    r
}

/// Fig 10: GPU reduction styles (PR and TC only).
pub fn fig10(ds: &Dataset) -> Report {
    let mut r = Report::new("fig10", "Throughputs of GPU reduction styles (§5.9)");
    style_throughput_block(
        &mut r,
        ds,
        "gpu_reduction",
        &["global-add", "block-add", "reduction-add"],
        &[Model::Cuda],
        &[Algorithm::Pr, Algorithm::Tc],
        None,
    );
    r
}

/// Fig 11: CPU reduction styles (PR and TC only).
pub fn fig11(ds: &Dataset) -> Report {
    let mut r = Report::new("fig11", "Throughputs of CPU reduction styles (§5.10)");
    style_throughput_block(
        &mut r,
        ds,
        "cpu_reduction",
        &["atomic-red", "critical-red", "clause-red"],
        &[Model::Omp, Model::Cpp],
        &[Algorithm::Pr, Algorithm::Tc],
        None,
    );
    r
}
