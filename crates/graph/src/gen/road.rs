//! Road-network generator — the `USA-road-d.NY` family.
//!
//! Real road networks have near-uniform low degree (`d_avg ≈ 2.8`,
//! `d_max = 8` for the NY map), no high-degree hubs, and very large diameter
//! (721 on 264 k vertices). We synthesize that regime on a `w × h` lattice:
//!
//! * a serpentine path through every cell guarantees connectivity and a
//!   long backbone,
//! * vertical "cross streets" appear with probability `P_DOWN`, thinning the
//!   lattice down to the road-map average degree,
//! * occasional diagonals (probability `P_DIAG`) create the handful of
//!   degree-5/6 intersections real maps have.
//!
//! The result is connected, planar-ish, degree-bounded, and high-diameter —
//! the properties §5.13 of the paper identifies as the performance-relevant
//! ones for this input.

use super::random::SplitMix;
use crate::{Csr, GraphBuilder, NodeId};

const P_DOWN: f64 = 0.40;
const P_DIAG: f64 = 0.05;

/// Generates a road-map-like graph on a `w × h` lattice (needs `w >= 2`).
pub fn road(w: usize, h: usize, seed: u64) -> Csr {
    assert!(w >= 2 && h >= 1, "road lattice needs w >= 2, h >= 1");
    let mut rng = SplitMix::new(seed ^ 0x526f_6164); // "Road" stream tag
    let mut b = GraphBuilder::new(w * h);
    let id = |x: usize, y: usize| (y * w + x) as NodeId;

    for y in 0..h {
        // serpentine backbone: the full row, plus one connector to the next row
        for x in 0..w - 1 {
            b.add_edge(id(x, y), id(x + 1, y));
        }
        if y + 1 < h {
            let connector_x = if y % 2 == 0 { w - 1 } else { 0 };
            b.add_edge(id(connector_x, y), id(connector_x, y + 1));
        }
    }
    for y in 0..h.saturating_sub(1) {
        for x in 0..w {
            if rng.f64() < P_DOWN {
                b.add_edge(id(x, y), id(x, y + 1));
            }
            if x + 1 < w && rng.f64() < P_DIAG {
                b.add_edge(id(x, y), id(x + 1, y + 1));
            }
        }
    }
    b.build(format!("road-{w}x{h}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn deterministic() {
        assert_eq!(road(40, 20, 7), road(40, 20, 7));
    }

    #[test]
    fn different_seed_changes_graph() {
        assert_ne!(road(40, 20, 7).num_edges(), road(40, 20, 8).num_edges());
    }

    #[test]
    fn family_properties() {
        let g = road(80, 40, 42);
        let s = GraphStats::compute(&g);
        assert_eq!(s.components, 1, "road graph must be connected");
        assert!(
            s.avg_degree > 2.2 && s.avg_degree < 3.6,
            "d_avg = {}",
            s.avg_degree
        );
        assert!(s.max_degree <= 8, "d_max = {}", s.max_degree);
        // high diameter relative to size: NY map has 721 on 264k nodes;
        // our lattice should comfortably exceed sqrt(n)
        assert!(s.diameter_lb as f64 > (g.num_nodes() as f64).sqrt());
    }

    #[test]
    fn minimal_lattice() {
        let g = road(2, 1, 1);
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 2);
    }
}
