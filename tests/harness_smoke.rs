//! Cross-crate integration: the experiment harness produces coherent
//! reports on small filtered run plans.

use indigo2::graph::gen::{Scale, SuiteGraph};
use indigo2::harness::experiments::{self, fig14, fig15, tables, Dataset};
use indigo2::harness::{RunPlan, TargetSpec};
use indigo2::styles::{Algorithm, Model};

fn mini_dataset() -> Dataset {
    // SSSP + TC on CUDA and Cpp, two inputs — small but exercises ratio
    // pairing, reductions, and both target kinds
    let plan = RunPlan::for_algorithms(
        &[Algorithm::Sssp, Algorithm::Tc],
        &[Model::Cuda, Model::Cpp],
        Scale::Tiny,
        1,
    )
    .with_graphs(vec![SuiteGraph::RoadMap, SuiteGraph::Rmat]);
    Dataset {
        measurements: plan.run(|_, _| {}),
        scale: Scale::Tiny,
    }
}

#[test]
fn pair_figures_render_with_data() {
    let ds = mini_dataset();
    // fig05 (push/pull) applies to SSSP; fig01 (atomic kinds) to both
    for spec in experiments::PAIR_SPECS
        .iter()
        .filter(|s| ["fig01", "fig05"].contains(&s.id))
    {
        let report = experiments::pair_report(spec, &ds);
        let text = report.render();
        assert!(text.contains("SSSP"), "{}: {text}", spec.id);
        assert!(report.csv.len() > 1, "{} produced no csv rows", spec.id);
    }
}

#[test]
fn fig14_reports_percentages_for_measured_models() {
    let ds = mini_dataset();
    let r = fig14::fig14(&ds);
    let text = r.render();
    assert!(text.contains("CUDA"));
    assert!(text.contains("C++ threads"));
    // percentages within a dimension sum to ~100 for models with winners
    let vertex_edge: Vec<f64> = r
        .csv
        .iter()
        .filter(|row| row.starts_with("cuda,direction"))
        .map(|row| row.rsplit(',').next().unwrap().parse::<f64>().unwrap())
        .collect();
    let total: f64 = vertex_edge.iter().sum();
    assert!(
        (total - 100.0).abs() < 1.0,
        "direction percentages sum to {total}"
    );
}

#[test]
fn fig15_matrix_has_sensible_cells() {
    let ds = mini_dataset();
    let r = fig15::fig15(&ds);
    assert!(r.render().contains("push"));
    // every CSV ratio is positive and finite
    for row in r.csv.iter().skip(1) {
        let ratio: f64 = row.rsplit(',').next().unwrap().parse().unwrap();
        assert!(ratio.is_finite() && ratio > 0.0, "{row}");
    }
}

#[test]
fn structural_tables_match_enumerator() {
    let t3 = tables::table3().render();
    assert!(t3.contains("| 734"), "CUDA total drifted: {t3}");
    assert!(t3.contains("1098"), "grand total drifted: {t3}");
    let t45 = tables::tables45(Scale::Tiny).render();
    assert!(t45.lines().count() >= 7);
}

#[test]
fn target_defaults_cover_both_systems() {
    assert_eq!(TargetSpec::defaults_for(Model::Cuda).len(), 2);
    assert_eq!(TargetSpec::defaults_for(Model::Cpp).len(), 2);
}
