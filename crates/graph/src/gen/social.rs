//! Preferential-attachment generator — the `soc-LiveJournal1` family.
//!
//! Barabási–Albert growth: each arriving vertex attaches `m` edges to
//! existing vertices chosen proportionally to their current degree (plus one
//! uniform fallback to keep early vertices reachable). Produces a power-law
//! community-style network: moderate average degree, extreme hubs
//! (`d_max ≫ d_avg`), tiny diameter — the regime the paper's soc-LiveJournal1
//! input occupies (d_avg 17.7, d_max 20 333, diameter 21).

use super::random::SplitMix;
use crate::{Csr, GraphBuilder, NodeId};

/// Generates a preferential-attachment graph on `n` vertices with `m`
/// attachments per arriving vertex (`n > m >= 1`).
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> Csr {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    let mut rng = SplitMix::new(seed ^ 0x534f_4349); // "SOCI"
    let mut b = GraphBuilder::new(n);

    // repeated-endpoints list: each endpoint of each edge appears once, so a
    // uniform draw from it is a degree-proportional draw over vertices.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);

    // seed clique on the first m + 1 vertices
    for a in 0..=m {
        for c in a + 1..=m {
            b.add_edge(a as NodeId, c as NodeId);
            endpoints.push(a as NodeId);
            endpoints.push(c as NodeId);
        }
    }

    for v in (m + 1)..n {
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
        let mut guard = 0usize;
        while chosen.len() < m {
            // mostly degree-proportional, occasionally uniform, which keeps
            // the hub growth of BA while avoiding pathological early lock-in
            let t = if rng.f64() < 0.9 {
                endpoints[rng.below(endpoints.len() as u64) as usize]
            } else {
                rng.below(v as u64) as NodeId
            };
            if t != v as NodeId && !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
            if guard > 64 * m {
                break; // degenerate tiny prefix; accept fewer attachments
            }
        }
        for &t in &chosen {
            b.add_edge(v as NodeId, t);
            endpoints.push(v as NodeId);
            endpoints.push(t);
        }
    }
    b.build(format!("soc-pa-{n}-{m}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn deterministic() {
        assert_eq!(
            preferential_attachment(500, 4, 9),
            preferential_attachment(500, 4, 9)
        );
    }

    #[test]
    fn family_properties_power_law() {
        let g = preferential_attachment(4000, 8, 42);
        let s = GraphStats::compute(&g);
        assert_eq!(s.components, 1, "BA graphs are connected");
        // avg degree ~ 2m
        assert!(
            s.avg_degree > 10.0 && s.avg_degree < 22.0,
            "d_avg {}",
            s.avg_degree
        );
        // hubs: dmax far above average
        assert!(
            s.max_degree as f64 > 6.0 * s.avg_degree,
            "d_max {}",
            s.max_degree
        );
        // small world
        assert!(s.diameter_lb <= 10, "diameter_lb {}", s.diameter_lb);
    }

    #[test]
    fn every_late_vertex_connected() {
        let g = preferential_attachment(300, 3, 7);
        for v in 0..300u32 {
            assert!(g.degree(v) >= 1, "vertex {v} isolated");
        }
    }
}
