//! Tables 4/5 bench: generator and property-analysis throughput for the
//! five input families.

use criterion::Criterion;
use indigo_bench::{bench_scale, criterion};
use indigo_graph::gen::{suite_graph, SUITE_GRAPHS};
use indigo_graph::stats::GraphStats;

fn main() {
    let mut c: Criterion = criterion();
    let scale = bench_scale();
    {
        let mut g = c.benchmark_group("table4_generators");
        for which in SUITE_GRAPHS {
            g.bench_function(which.label(), |b| b.iter(|| suite_graph(which, scale)));
        }
        g.finish();
    }
    {
        let mut g = c.benchmark_group("table5_stats");
        for which in SUITE_GRAPHS {
            let graph = suite_graph(which, scale);
            g.bench_function(which.label(), |b| b.iter(|| GraphStats::compute(&graph)));
        }
        g.finish();
    }
    c.final_summary();
}
