//! CPU PageRank in every applicable style.
//!
//! Vertex-based, topology-driven (Table 2). The style axes that remain are
//! the data-flow direction (§2.4: pull reads neighbor ranks, push
//! atomically scatters contributions), determinism (§2.6: push is
//! deterministic-only, pull comes in both), the CPU reduction style used
//! for the convergence delta (§2.10.2), and the model's loop schedule.
//!
//! Iterates `rank' = (1-d)/n + d · Σ rank[u]/deg(u)` until the L1 delta
//! drops below [`crate::PR_EPSILON`] or [`crate::PR_MAX_ITERS`] is hit.

use super::CpuExec;
use indigo_exec::sync::{omp_critical, AtomicF32};
use indigo_styles::{CpuReduction, Determinism, Flow, StyleConfig};

/// Cache-line-padded accumulator for the `reduction`-clause style's
/// privatized partials (avoids false sharing between worker threads).
#[repr(align(64))]
struct PaddedF32(AtomicF32);

/// The three reduction styles of Listing 11, applied to the delta sum.
struct DeltaReducer {
    style: CpuReduction,
    global: AtomicF32,
    partials: Vec<PaddedF32>,
}

impl DeltaReducer {
    fn new(style: CpuReduction, threads: usize) -> Self {
        DeltaReducer {
            style,
            global: AtomicF32::new(0.0),
            partials: (0..threads)
                .map(|_| PaddedF32(AtomicF32::new(0.0)))
                .collect(),
        }
    }

    fn reset(&self) {
        self.global.store(0.0);
        for p in &self.partials {
            p.0.store(0.0);
        }
    }

    /// One contribution from worker `tid` (Listing 11's `sum += val`).
    #[inline]
    fn add(&self, tid: usize, val: f32) {
        match self.style {
            CpuReduction::AtomicRed => {
                self.global.fetch_add(val);
            }
            CpuReduction::CriticalRed => omp_critical(|| {
                let cur = self.global.load();
                self.global.store(cur + val);
            }),
            CpuReduction::ClauseRed => {
                // privatized partial: uncontended, fetch_add never retries
                self.partials[tid].0.fetch_add(val);
            }
        }
    }

    /// Combines after the parallel region (the clause's implicit join).
    fn total(&self) -> f32 {
        match self.style {
            CpuReduction::ClauseRed => self.partials.iter().map(|p| p.0.load()).sum(),
            _ => self.global.load(),
        }
    }
}

/// Runs the PR variant `cfg`; returns ranks and the iteration count.
pub fn run(cfg: &StyleConfig, input: &crate::GraphInput, exec: &CpuExec) -> (Vec<f32>, usize) {
    let n = input.num_nodes();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let csr = &input.csr;
    let flow = cfg.flow.expect("PR has push and pull variants");
    let det = cfg.determinism == Determinism::Deterministic;
    let damping = crate::PR_DAMPING;
    let base = (1.0 - damping) / n as f32;
    let reducer = DeltaReducer::new(
        cfg.cpu_reduction
            .expect("CPU PR variants carry a reduction style"),
        exec.threads(),
    );

    let rank: Vec<AtomicF32> = (0..n).map(|_| AtomicF32::new(1.0 / n as f32)).collect();
    // push always needs a scatter target; deterministic pull needs the
    // second buffer too
    let next: Option<Vec<AtomicF32>> =
        (det || flow == Flow::Push).then(|| (0..n).map(|_| AtomicF32::new(0.0)).collect());

    let mut iterations = 0usize;
    while iterations < crate::PR_MAX_ITERS {
        iterations += 1;
        reducer.reset();
        match flow {
            Flow::Pull => {
                let write = next.as_deref();
                exec.pfor(n, |vi, tid| {
                    let mut sum = 0.0f32;
                    for &u in csr.neighbors(vi as u32) {
                        let du = csr.degree(u).max(1) as f32;
                        sum += rank[u as usize].load() / du;
                    }
                    let nv = base + damping * sum;
                    reducer.add(tid, (nv - rank[vi].load()).abs());
                    match write {
                        Some(w) => w[vi].store(nv), // deterministic (6b)
                        None => rank[vi].store(nv), // in-place (6a)
                    }
                });
                if let Some(w) = write {
                    // publish the new ranks (swap via copy keeps `rank` the
                    // canonical array)
                    exec.pfor(n, |i, _| rank[i].store(w[i].load()));
                }
            }
            Flow::Push => {
                let scatter = next.as_deref().expect("push PR always double-buffers");
                // zero the scatter target
                exec.pfor(n, |i, _| scatter[i].store(0.0));
                // scatter contributions with atomic adds (Listing 4a shape)
                exec.pfor(n, |vi, _| {
                    let v = vi as u32;
                    let dv = csr.degree(v).max(1) as f32;
                    let contrib = rank[vi].load() / dv;
                    for &u in csr.neighbors(v) {
                        scatter[u as usize].fetch_add(contrib);
                    }
                });
                // gather: finalize, measure delta, publish
                exec.pfor(n, |vi, tid| {
                    let nv = base + damping * scatter[vi].load();
                    reducer.add(tid, (nv - rank[vi].load()).abs());
                    rank[vi].store(nv);
                });
            }
        }
        if reducer.total() < crate::PR_EPSILON {
            break;
        }
    }
    (rank.iter().map(|c| c.load()).collect(), iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{serial, GraphInput};
    use indigo_graph::gen::{self, toy};
    use indigo_styles::{enumerate, Algorithm, Model};

    fn close(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 2e-3)
    }

    #[test]
    fn all_cpu_pr_variants_match_reference() {
        let graphs = vec![toy::star(15), toy::cycle(9), gen::gnp(60, 0.08, 4)];
        for g in graphs {
            let input = GraphInput::new(g);
            let expect = serial::pagerank(
                &input.csr,
                crate::PR_DAMPING,
                crate::PR_EPSILON,
                crate::PR_MAX_ITERS,
            );
            for model in [Model::Omp, Model::Cpp] {
                for cfg in enumerate::variants(Algorithm::Pr, model) {
                    let exec = CpuExec::new(&cfg, 3);
                    let (got, iters) = run(&cfg, &input, &exec);
                    assert!(iters >= 1);
                    assert!(
                        close(&got, &expect),
                        "{} on {}: {:?} vs {:?}",
                        cfg.name(),
                        input.name(),
                        &got[..3.min(got.len())],
                        &expect[..3.min(expect.len())]
                    );
                }
            }
        }
    }

    #[test]
    fn ranks_sum_to_one() {
        let input = GraphInput::new(gen::preferential_attachment(300, 4, 5));
        let cfg = StyleConfig::baseline(Algorithm::Pr, Model::Cpp);
        let exec = CpuExec::new(&cfg, 4);
        let (ranks, _) = run(&cfg, &input, &exec);
        let sum: f32 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-2, "sum {sum}");
    }

    #[test]
    fn empty_graph() {
        let input = GraphInput::new(indigo_graph::Csr::from_raw(vec![0], vec![], vec![], "e"));
        let cfg = StyleConfig::baseline(Algorithm::Pr, Model::Omp);
        let exec = CpuExec::new(&cfg, 2);
        let (ranks, iters) = run(&cfg, &input, &exec);
        assert!(ranks.is_empty());
        assert_eq!(iters, 0);
    }

    #[test]
    fn reduction_styles_agree_on_totals() {
        // the three reducers must compute the same delta sums, so iteration
        // counts must match across reduction styles
        let input = GraphInput::new(gen::gnp(80, 0.06, 8));
        let mut iters = Vec::new();
        for red in CpuReduction::ALL {
            let mut cfg = StyleConfig::baseline(Algorithm::Pr, Model::Cpp);
            cfg.cpu_reduction = Some(red);
            let exec = CpuExec::new(&cfg, 3);
            iters.push(run(&cfg, &input, &exec).1);
        }
        assert_eq!(iters[0], iters[1]);
        assert_eq!(iters[1], iters[2]);
    }
}
