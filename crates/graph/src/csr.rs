//! Compressed-sparse-row graph layout (paper §4.2, [21]).
//!
//! `row_start[v] .. row_start[v + 1]` indexes into `nbr_list` / `weight`,
//! exactly the `nbr_idx` / `nbr_list` / `e_weight` arrays of the paper's
//! Listing 1a and 4. Every undirected edge appears as two directed edges.

use crate::{NodeId, Weight};

/// An immutable graph in CSR form.
///
/// Construct through [`crate::GraphBuilder`], a generator in [`crate::gen`],
/// or a loader in [`crate::io`]; those paths guarantee the structural
/// invariants that [`Csr::validate`] checks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    row_start: Vec<usize>,
    nbr_list: Vec<NodeId>,
    weight: Vec<Weight>,
    name: String,
}

impl Csr {
    /// Builds a CSR directly from its raw arrays.
    ///
    /// `row_start` must have length `n + 1`, start at 0, be non-decreasing,
    /// and end at `nbr_list.len()`; `weight` must be empty (unweighted) or
    /// have the same length as `nbr_list`. Panics otherwise — this is the
    /// single choke point all construction paths flow through.
    pub fn from_raw(
        row_start: Vec<usize>,
        nbr_list: Vec<NodeId>,
        weight: Vec<Weight>,
        name: impl Into<String>,
    ) -> Self {
        let g = Csr {
            row_start,
            nbr_list,
            weight,
            name: name.into(),
        };
        g.validate();
        g
    }

    /// Checks the structural invariants; panics with a description on
    /// violation. Cheap enough to run in tests and on every load.
    pub fn validate(&self) {
        assert!(
            !self.row_start.is_empty(),
            "row_start must have length n + 1 >= 1"
        );
        assert_eq!(self.row_start[0], 0, "row_start must begin at 0");
        assert!(
            self.row_start.windows(2).all(|w| w[0] <= w[1]),
            "row_start must be non-decreasing"
        );
        assert_eq!(
            *self.row_start.last().unwrap(),
            self.nbr_list.len(),
            "row_start must end at the number of directed edges"
        );
        assert!(
            self.weight.is_empty() || self.weight.len() == self.nbr_list.len(),
            "weight array must be empty or parallel to nbr_list"
        );
        let n = self.num_nodes() as NodeId;
        assert!(
            self.nbr_list.iter().all(|&u| u < n),
            "neighbor ids must be < num_nodes"
        );
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.row_start.len() - 1
    }

    /// Number of *directed* edges (twice the undirected edge count).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.nbr_list.len()
    }

    /// Human-readable input name (e.g. `"rmat18.sym"`), used in reports.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replaces the report name (used when re-deriving graphs).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// True if the graph carries edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        !self.weight.is_empty()
    }

    /// The half-open index range of `v`'s adjacency in [`Self::nbr_list`].
    #[inline]
    pub fn neighbor_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.row_start[v as usize]..self.row_start[v as usize + 1]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.row_start[v as usize + 1] - self.row_start[v as usize]
    }

    /// Neighbors of `v` as a slice (sorted ascending for builder-made graphs).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.nbr_list[self.neighbor_range(v)]
    }

    /// Weights parallel to [`Self::neighbors`]; panics if unweighted.
    #[inline]
    pub fn neighbor_weights(&self, v: NodeId) -> &[Weight] {
        assert!(self.is_weighted(), "graph {} is unweighted", self.name);
        &self.weight[self.neighbor_range(v)]
    }

    /// The full `row_start` array (`nbr_idx` in the paper's listings).
    #[inline]
    pub fn row_start(&self) -> &[usize] {
        &self.row_start
    }

    /// The full neighbor array (`nbr_list` in the paper's listings).
    #[inline]
    pub fn nbr_list(&self) -> &[NodeId] {
        &self.nbr_list
    }

    /// The full weight array (`e_weight` in the paper's listings);
    /// empty when unweighted.
    #[inline]
    pub fn weights(&self) -> &[Weight] {
        &self.weight
    }

    /// Weight of the `i`-th directed edge.
    #[inline]
    pub fn weight_at(&self, i: usize) -> Weight {
        self.weight[i]
    }

    /// Iterator over `(v, u, edge_index)` for all directed edges.
    pub fn iter_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, usize)> + '_ {
        (0..self.num_nodes() as NodeId).flat_map(move |v| {
            self.neighbor_range(v)
                .map(move |i| (v, self.nbr_list[i], i))
        })
    }

    /// In-memory size of the CSR arrays in mebibytes (paper Table 4 column).
    pub fn size_mb(&self) -> f64 {
        let bytes = self.row_start.len() * std::mem::size_of::<usize>()
            + self.nbr_list.len() * std::mem::size_of::<NodeId>()
            + self.weight.len() * std::mem::size_of::<Weight>();
        bytes as f64 / (1024.0 * 1024.0)
    }

    /// Returns a copy with deterministic synthetic weights attached
    /// (see [`crate::weights::edge_weight`]); used to run the weighted
    /// algorithms on unweighted inputs, as the paper does.
    ///
    /// Weights are a pure function of the *undirected* edge endpoints, so the
    /// two directed copies of an edge always agree.
    pub fn with_synthetic_weights(&self) -> Csr {
        let mut weight = Vec::with_capacity(self.nbr_list.len());
        for v in 0..self.num_nodes() as NodeId {
            for &u in self.neighbors(v) {
                weight.push(crate::weights::edge_weight(v, u));
            }
        }
        Csr {
            row_start: self.row_start.clone(),
            nbr_list: self.nbr_list.clone(),
            weight,
            name: self.name.clone(),
        }
    }

    /// True if for every directed edge `(v, u)` the reverse `(u, v)` exists —
    /// the symmetry property every generated input has.
    pub fn is_symmetric(&self) -> bool {
        (0..self.num_nodes() as NodeId).all(|v| {
            self.neighbors(v)
                .iter()
                .all(|&u| self.neighbors(u).binary_search(&v).is_ok())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Csr {
        // 0 - 1 - 2 (undirected path)
        Csr::from_raw(vec![0, 1, 3, 4], vec![1, 0, 2, 1], vec![], "path3")
    }

    #[test]
    fn basic_accessors() {
        let g = path3();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(!g.is_weighted());
        assert!(g.is_symmetric());
    }

    #[test]
    fn iter_edges_covers_all() {
        let g = path3();
        let edges: Vec<_> = g.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1, 0), (1, 0, 1), (1, 2, 2), (2, 1, 3)]);
    }

    #[test]
    fn synthetic_weights_symmetric() {
        let g = path3().with_synthetic_weights();
        assert!(g.is_weighted());
        // weight(0,1) as stored at 0's row equals weight(1,0) at 1's row
        assert_eq!(g.neighbor_weights(0)[0], g.neighbor_weights(1)[0]);
        assert!(g.weights().iter().all(|&w| w >= 1));
    }

    #[test]
    #[should_panic(expected = "row_start must begin at 0")]
    fn rejects_bad_row_start() {
        Csr::from_raw(vec![1, 2], vec![0, 0], vec![], "bad");
    }

    #[test]
    #[should_panic(expected = "neighbor ids")]
    fn rejects_out_of_range_neighbor() {
        Csr::from_raw(vec![0, 1], vec![7], vec![], "bad");
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = Csr::from_raw(vec![0], vec![], vec![], "empty");
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_symmetric());
    }

    #[test]
    fn size_mb_positive() {
        assert!(path3().size_mb() > 0.0);
    }
}
