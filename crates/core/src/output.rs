//! Algorithm outputs.

/// The result value of one program run, by algorithm family.
#[derive(Clone, Debug, PartialEq)]
pub enum Output {
    /// BFS: hop count from the source per vertex (`u32::MAX` = unreachable).
    Levels(Vec<u32>),
    /// SSSP: weighted distance from the source (`u32::MAX` = unreachable).
    Distances(Vec<u32>),
    /// CC: per-vertex component label (the minimum vertex id in the
    /// component, which is what min-label propagation converges to).
    Labels(Vec<u32>),
    /// MIS: membership flags of the computed independent set.
    MisSet(Vec<bool>),
    /// PR: PageRank score per vertex.
    Ranks(Vec<f32>),
    /// TC: global triangle count.
    Triangles(u64),
}

impl Output {
    /// Short descriptor for logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Output::Levels(_) => "levels",
            Output::Distances(_) => "distances",
            Output::Labels(_) => "labels",
            Output::MisSet(_) => "mis-set",
            Output::Ranks(_) => "ranks",
            Output::Triangles(_) => "triangles",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_distinct() {
        let outs = [
            Output::Levels(vec![]),
            Output::Distances(vec![]),
            Output::Labels(vec![]),
            Output::MisSet(vec![]),
            Output::Ranks(vec![]),
            Output::Triangles(0),
        ];
        let mut kinds: Vec<_> = outs.iter().map(|o| o.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), outs.len());
    }
}
