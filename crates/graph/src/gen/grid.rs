//! 2-D grid generator — the `2d-2e20.sym` family.
//!
//! A `w × h` 4-neighbor lattice (no torus wrap): every vertex has degree ≤ 4,
//! degrees are perfectly uniform in the interior, and the diameter is
//! `w + h - 2` — the uniform-low-degree / high-diameter regime in which the
//! paper finds thread granularity and data-driven worklists to matter most.

use crate::{Csr, GraphBuilder, NodeId};

/// Generates a `w × h` grid. Vertex `(x, y)` has id `y * w + x`.
pub fn grid2d(w: usize, h: usize) -> Csr {
    assert!(w >= 1 && h >= 1, "grid dimensions must be positive");
    let mut b = GraphBuilder::new(w * h);
    let id = |x: usize, y: usize| (y * w + x) as NodeId;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_edge(id(x, y), id(x + 1, y));
            }
            if y + 1 < h {
                b.add_edge(id(x, y), id(x, y + 1));
            }
        }
    }
    b.build(format!("grid-{w}x{h}.sym"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_matches_formula() {
        let (w, h) = (17, 9);
        let g = grid2d(w, h);
        let undirected = h * (w - 1) + w * (h - 1);
        assert_eq!(g.num_edges(), 2 * undirected);
    }

    #[test]
    fn degrees_bounded_by_four() {
        let g = grid2d(8, 8);
        let corner_deg = g.degree(0);
        assert_eq!(corner_deg, 2);
        // interior vertex
        assert_eq!(g.degree((3 * 8 + 3) as u32), 4);
        assert!((0..g.num_nodes() as u32).all(|v| g.degree(v) <= 4));
    }

    #[test]
    fn single_row_is_a_path() {
        let g = grid2d(5, 1);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn one_by_one_has_no_edges() {
        let g = grid2d(1, 1);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}
