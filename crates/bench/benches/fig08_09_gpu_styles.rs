//! Figs 8/9 bench: persistent vs non-persistent threads (8) and
//! thread/warp/block granularity on the road map vs the social network (9).

use indigo_bench::{bench_gpu_variant, criterion, input};
use indigo_gpusim::rtx3090;
use indigo_graph::gen::SuiteGraph;
use indigo_styles::{Algorithm, Granularity, Model, Persistence, StyleConfig};

fn main() {
    let mut c = criterion();
    for which in [SuiteGraph::RoadMap, SuiteGraph::SocialNetwork] {
        let inp = input(which);
        for gran in Granularity::ALL {
            for pers in Persistence::ALL {
                let mut cfg = StyleConfig::baseline(Algorithm::Bfs, Model::Cuda);
                cfg.granularity = Some(gran);
                cfg.persistence = Some(pers);
                bench_gpu_variant(
                    &mut c,
                    "fig08_09_gpu_styles",
                    &format!("{}/bfs/{}/{}", inp.name(), gran.label(), pers.label()),
                    &cfg,
                    &inp,
                    rtx3090(),
                );
            }
        }
    }
    c.final_summary();
}
