//! # indigo-obs
//!
//! The workspace-wide observability layer (DESIGN.md §7.5). Three pieces:
//!
//! * [`counter`] / [`hist`] — **pre-registered, allocation-free metrics**.
//!   Every counter and histogram is a variant of a fixed enum indexing
//!   static atomic storage, so the instrumented hot paths (simulator warp
//!   pricing, worklist pushes, pool leases) never touch the allocator —
//!   compatible with the zero-steady-state-allocation guarantee pinned by
//!   `tests/alloc_regression.rs`. Counters are sharded across cache-line-
//!   padded slots keyed by a thread-local index, so concurrent increments
//!   from the scheduler's job threads don't serialize on one line.
//! * [`event`] / [`sink`] — **lightweight spans**: phase/cell/kernel-level
//!   [`TraceEvent`]s with monotonic microsecond timestamps, streamed to an
//!   append-only JSONL file with the same torn-tail discipline as the
//!   checkpoint journal (newline-guarded append, skip-malformed load).
//!   [`sink::console_line`] is the single-writer console sink: one mutex,
//!   one `write_all` per whole line, so progress output from concurrent
//!   jobs can never interleave mid-line.
//! * [`chrome`] — converts a recorded trace to chrome://tracing JSON
//!   (`indigo-exp trace`).
//! * [`gauge`] / [`window`] / [`ring`] — **live-level primitives** for the
//!   serving layer's `/metrics` and flight recorder (DESIGN.md §7.10):
//!   pre-registered gauges, a 10 s rolling-window histogram for live
//!   p50/p99 and SLO burn, and a seqlock ring of POD records. Gauge
//!   recording is `telemetry`-gated like counters; `RollingHist` and
//!   [`SeqRing`] are instance-owned and always compiled so the serving
//!   layer's always-on stats can use them in every build.
//!
//! ## Feature gating
//!
//! Recording is compile-time gated behind the `telemetry` feature.
//! [`enabled`] is a `const fn` over `cfg!(feature = "telemetry")`: callers
//! wrap any telemetry-only computation in `if indigo_obs::enabled() { … }`
//! and the whole block — including local tallies feeding it — is dead-code
//! eliminated when the feature is off. Reading APIs (trace parsing,
//! validation, chrome export) are always compiled, so `indigo-exp trace` /
//! `indigo-exp profile` work on previously recorded traces from any build.

pub mod chrome;
pub mod counter;
pub mod event;
pub mod gauge;
pub mod hist;
pub mod ring;
pub mod sink;
pub mod window;

pub use counter::{counters_snapshot, Counter, CounterSnapshot, NUM_COUNTERS};
pub use event::{load_trace, now_micros, validate_line, TraceEvent};
pub use gauge::{gauges_snapshot, Gauge, GaugeSnapshot, NUM_GAUGES};
pub use hist::{hists_snapshot, Hist, HistSnapshot, NUM_BUCKETS, NUM_HISTS};
pub use ring::SeqRing;
pub use sink::{console_line, emit, install_trace, trace_installed};
pub use window::{RollingHist, RollingSnapshot, WINDOW_SECS};

/// Whether this build records telemetry. `const`-foldable: branches on it
/// vanish entirely in `telemetry`-off builds.
#[inline(always)]
#[must_use]
pub const fn enabled() -> bool {
    cfg!(feature = "telemetry")
}
