//! Direction-optimizing BFS (Beamer et al. [6]) — the optimization behind
//! both Lonestar's and Gardenia's BFS.
//!
//! Starts top-down (push from the sparse frontier list); when the frontier
//! grows past a fraction of the graph it switches to bottom-up (every
//! unvisited vertex pulls, probing a previous-level *bitmap* and stopping
//! at the first visited parent), then switches back to the sparse list as
//! the frontier shrinks. All traversal state — level array, sparse
//! frontier, direction bitmaps, degree table — is leased scratch
//! (DESIGN.md §7.7): the steady state allocates nothing per level or per
//! call.

use indigo_core::GraphInput;
use indigo_exec::frontier::{fill_atomic_u32, grained_for, AtomicBitmap, SparseFrontier};
use indigo_exec::{PoolRegistry, Schedule};
use indigo_gpusim::{Assign, Device, GpuBuf, Sim};
use indigo_graph::{scan_prefetched, DegreeTable, NodeId, INF};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Frontier-size fraction (of directed edges) above which the traversal
/// runs bottom-up.
const SWITCH_FRACTION: usize = 20;

/// Capacity-retained traversal state, leased per call.
#[derive(Default)]
struct Scratch {
    level: Vec<AtomicU32>,
    frontier: SparseFrontier,
    degrees: DegreeTable,
    /// Previous-level membership for bottom-up probes (1 bit per vertex).
    prev: AtomicBitmap,
    /// Vertices discovered by the current bottom-up round.
    next: AtomicBitmap,
}

static SCRATCH: PoolRegistry<Scratch> = PoolRegistry::new();

/// CPU direction-optimizing BFS. Returns `(levels, seconds)`.
pub fn cpu(input: &GraphInput, threads: usize, source: NodeId) -> (Vec<u32>, f64) {
    let mut out = Vec::new();
    let secs = cpu_into(input, threads, source, &mut out);
    (out, secs)
}

/// [`cpu`] writing the levels into a caller-owned buffer; with a warm
/// buffer the call is allocation-free.
pub fn cpu_into(input: &GraphInput, threads: usize, source: NodeId, out: &mut Vec<u32>) -> f64 {
    let g = &input.csr;
    let n = g.num_nodes();
    let m = g.num_edges();
    let pool = crate::pool(threads);
    let start = std::time::Instant::now();
    out.clear();
    if n == 0 {
        return start.elapsed().as_secs_f64();
    }
    let mut scratch = SCRATCH.lease_guard(0, Scratch::default);
    let Scratch {
        level,
        frontier,
        degrees,
        prev,
        next,
    } = &mut *scratch;
    fill_atomic_u32(level, n, INF);
    degrees.build(g);
    frontier.reset(pool.num_threads());
    *level[source as usize].get_mut() = 0;
    frontier.seed(source);

    let mut depth = 0u32;
    let mut top_down = true;
    loop {
        depth += 1;
        let lvl: &[AtomicU32] = level;
        if top_down {
            let frontier_edges = degrees.edges_of(frontier.current());
            if frontier_edges as usize * SWITCH_FRACTION > m {
                // switch: materialize the frontier as a bitmap and pull
                if indigo_obs::enabled() {
                    indigo_obs::Counter::FrontierDirectionSwitches.incr();
                }
                top_down = false;
                prev.reset(n);
                next.reset(n);
                for &v in frontier.current() {
                    prev.set_serial(v as usize);
                }
            }
        }
        if top_down {
            // top-down: the frontier pushes to unvisited neighbors
            let fr: &SparseFrontier = frontier;
            grained_for(&pool, fr.current().len(), Schedule::Default, |fi, tid| {
                let v = fr.current()[fi];
                scan_prefetched(g.neighbors(v), lvl, |_, u| {
                    if lvl[u as usize].load(Ordering::Relaxed) == INF
                        && lvl[u as usize]
                            .compare_exchange(INF, depth, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                    {
                        // Safety: parallel_for/grained_for hand each worker
                        // a distinct tid.
                        unsafe { fr.push(tid, u) };
                    }
                });
            });
            if frontier.flip() == 0 {
                break;
            }
        } else {
            // bottom-up: every unvisited vertex probes the previous-level
            // bitmap for a parent
            next.clear();
            let (prev_bm, next_bm): (&AtomicBitmap, &AtomicBitmap) = (prev, next);
            let found = AtomicUsize::new(0);
            grained_for(&pool, n, Schedule::Default, |vi, _| {
                if lvl[vi].load(Ordering::Relaxed) != INF {
                    return;
                }
                for &u in g.neighbors(vi as NodeId) {
                    if prev_bm.test(u as usize) {
                        lvl[vi].store(depth, Ordering::Relaxed);
                        next_bm.set(vi);
                        found.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            });
            let count = found.load(Ordering::Relaxed);
            if indigo_obs::enabled() {
                indigo_obs::Hist::FrontierOccupancy.record(count as u64);
            }
            if count == 0 {
                break;
            }
            std::mem::swap(prev, next);
            if count * SWITCH_FRACTION <= n {
                // frontier shrank: rebuild the sparse list and push again
                if indigo_obs::enabled() {
                    indigo_obs::Counter::FrontierDirectionSwitches.incr();
                }
                top_down = true;
                frontier.reset(pool.num_threads());
                for (v, l) in level.iter_mut().enumerate().take(n) {
                    if *l.get_mut() == depth {
                        frontier.seed(v as u32);
                    }
                }
            }
        }
    }
    out.extend(level.iter_mut().map(|c| *c.get_mut()));
    start.elapsed().as_secs_f64()
}

/// Simulated-GPU direction-optimizing BFS. Returns `(levels, sim_seconds)`.
pub fn gpu(input: &GraphInput, device: Device, source: NodeId) -> (Vec<u32>, f64) {
    let dg = indigo_core::gpu::DeviceGraph::upload(input);
    let n = dg.n;
    let mut sim = Sim::new(device);
    let level = GpuBuf::new(n, INF).with_kind(indigo_gpusim::BufKind::Atomic);
    if n == 0 {
        return (Vec::new(), sim.elapsed_secs());
    }
    level.host_write(source as usize, 0);
    let frontier = GpuBuf::new(n + 1, 0);
    let fsize = GpuBuf::new(1, 1).with_kind(indigo_gpusim::BufKind::Atomic);
    let next = GpuBuf::new(n + 1, 0);
    let nsize = GpuBuf::new(1, 0).with_kind(indigo_gpusim::BufKind::Atomic);
    frontier.host_write(0, source);
    let mut lists = [(&frontier, &fsize), (&next, &nsize)];
    let mut depth = 0u32;

    loop {
        depth += 1;
        let d = depth;
        let (cur, nxt) = (lists[0], lists[1]);
        let len = cur.1.host_read(0) as usize;
        if len == 0 {
            break;
        }
        // frontier edge volume decides the direction (host-side heuristic,
        // as real implementations do with a device reduction)
        let frontier_edges: usize = (0..len)
            .map(|i| {
                let v = cur.0.host_read(i) as usize;
                (dg.row.host_read(v + 1) - dg.row.host_read(v)) as usize
            })
            .sum();
        if frontier_edges * SWITCH_FRACTION > dg.m {
            sim.launch(n, Assign::ThreadPerItem, false, |ctx, vi| {
                if ctx.ld(&level, vi) != INF {
                    return;
                }
                let beg = ctx.ld(&dg.row, vi) as usize;
                let end = ctx.ld(&dg.row, vi + 1) as usize;
                for i in beg..end {
                    let u = ctx.ld(&dg.nbr, i);
                    if ctx.ld(&level, u as usize) == d - 1 {
                        ctx.st(&level, vi, d);
                        let slot = ctx.atomic_add(nxt.1, 0, 1) as usize;
                        ctx.st(nxt.0, slot, vi as u32);
                        break;
                    }
                }
            });
        } else {
            sim.launch(len, Assign::WarpPerItem, false, |ctx, fi| {
                let v = ctx.ld(cur.0, fi);
                let beg = ctx.ld(&dg.row, v as usize) as usize;
                let end = ctx.ld(&dg.row, v as usize + 1) as usize;
                let lanes = ctx.lane_count();
                let mut i = beg + ctx.lane();
                while i < end {
                    let u = ctx.ld(&dg.nbr, i);
                    if ctx.ld(&level, u as usize) == INF
                        && ctx.atomic_min(&level, u as usize, d) == INF
                    {
                        let slot = ctx.atomic_add(nxt.1, 0, 1) as usize;
                        ctx.st(nxt.0, slot, u);
                    }
                    i += lanes;
                }
            });
        }
        cur.1.host_write(0, 0);
        lists.swap(0, 1);
    }
    (level.to_vec(), sim.elapsed_secs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use indigo_core::serial;
    use indigo_gpusim::rtx3090;
    use indigo_graph::gen::{self, toy};

    #[test]
    fn cpu_matches_serial_on_battery() {
        for g in [
            toy::path(40),
            toy::star(30),
            gen::gnp(200, 0.03, 9),
            gen::grid2d(12, 9),
        ] {
            let input = GraphInput::new(g);
            let expect = serial::bfs(&input.csr, 0);
            let (got, secs) = cpu(&input, 3, 0);
            assert_eq!(got, expect, "{}", input.name());
            assert!(secs >= 0.0);
        }
    }

    #[test]
    fn gpu_matches_serial_on_battery() {
        for g in [
            toy::path(40),
            gen::gnp(150, 0.05, 9),
            gen::preferential_attachment(200, 4, 1),
        ] {
            let input = GraphInput::new(g);
            let expect = serial::bfs(&input.csr, 0);
            let (got, secs) = gpu(&input, rtx3090(), 0);
            assert_eq!(got, expect, "{}", input.name());
            assert!(secs > 0.0);
        }
    }

    #[test]
    fn bottom_up_path_taken_on_dense_graph() {
        // a dense G(n, p) forces the switch in the second level
        let input = GraphInput::new(gen::gnp(300, 0.2, 4));
        let expect = serial::bfs(&input.csr, 0);
        assert_eq!(cpu(&input, 2, 0).0, expect);
    }

    #[test]
    fn empty_graph() {
        let input = GraphInput::new(indigo_graph::Csr::from_raw(vec![0], vec![], vec![], "e"));
        assert!(cpu(&input, 2, 0).0.is_empty());
        assert!(gpu(&input, rtx3090(), 0).0.is_empty());
    }
}
