//! "All other styles fixed" pairwise ratios (§5 intro).
//!
//! To contrast two options of one dimension, the paper divides the
//! throughputs of variant pairs that differ *only* in that dimension —
//! e.g. thread-level push vs thread-level pull. [`ratio_set`] reproduces
//! that: measurements are grouped by `(graph, target, peer_key(dim))`, and
//! within each group the throughput of the `numer`-labeled variant is
//! divided by the `denom`-labeled one.

use crate::matrix::Measurement;
use std::collections::HashMap;

/// One computed ratio with its provenance.
#[derive(Clone, Debug)]
pub struct Ratio {
    /// Algorithm of the paired variants (numerator side).
    pub algorithm: indigo_styles::Algorithm,
    /// Input label.
    pub graph: &'static str,
    /// Target label.
    pub target: String,
    /// `numer.geps / denom.geps`.
    pub value: f64,
}

/// Computes all `numer`/`denom` ratios for dimension `dim` over a
/// measurement set, holding every other dimension fixed.
///
/// Contract: within one `(peer_key(dim), graph, target)` group each
/// dimension label is expected at most once — a well-formed sweep measures
/// every cell exactly once. If duplicates do occur (e.g. concatenated
/// measurement sets), the *first* occurrence in input order wins, so the
/// result is deterministic for a given input ordering; debug builds assert
/// on the duplicate instead.
pub fn ratio_set(measurements: &[Measurement], dim: &str, numer: &str, denom: &str) -> Vec<Ratio> {
    // peer key + target + graph -> the (numer, denom) pair seen so far
    type PairSlot<'a> = (Option<&'a Measurement>, Option<&'a Measurement>);
    let mut groups: HashMap<(String, &'static str, String), PairSlot> = HashMap::new();
    for m in measurements {
        let Some(label) = m.cfg.dimension_label(dim) else {
            continue;
        };
        let key = (m.cfg.peer_key(dim), m.graph, m.target.clone());
        let entry = groups.entry(key).or_default();
        let slot = if label == numer {
            &mut entry.0
        } else if label == denom {
            &mut entry.1
        } else {
            continue;
        };
        debug_assert!(
            slot.is_none(),
            "duplicate measurement for {} ({label}) on {} / {}",
            m.cfg.name(),
            m.graph,
            m.target,
        );
        if slot.is_none() {
            *slot = Some(m);
        }
    }
    let mut out = Vec::new();
    for ((_, graph, target), (a, b)) in groups {
        if let (Some(a), Some(b)) = (a, b) {
            if b.geps > 0.0 && a.geps.is_finite() && b.geps.is_finite() {
                out.push(Ratio {
                    algorithm: a.cfg.algorithm,
                    graph,
                    target,
                    value: a.geps / b.geps,
                });
            }
        }
    }
    out
}

/// Ratio values of one algorithm (for per-algorithm boxen groups).
pub fn values_for(ratios: &[Ratio], algorithm: indigo_styles::Algorithm) -> Vec<f64> {
    ratios
        .iter()
        .filter(|r| r.algorithm == algorithm)
        .map(|r| r.value)
        .collect()
}

/// Median throughput of the measurements selected by `pred`. Even-length
/// selections interpolate the two middles, consistent with `q(0.5)` in
/// [`crate::stats::Summary::compute`] (taking the upper middle would bias
/// two-element selections toward the larger value).
pub fn median_geps(measurements: &[Measurement], pred: impl Fn(&Measurement) -> bool) -> f64 {
    let mut v: Vec<f64> = measurements
        .iter()
        .filter(|m| pred(m) && m.geps.is_finite())
        .map(|m| m.geps)
        .collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(f64::total_cmp);
    crate::matrix::interp_median(&v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use indigo_styles::{Algorithm, Flow, Model, StyleConfig};

    fn meas(cfg: StyleConfig, geps: f64) -> Measurement {
        Measurement {
            cfg,
            graph: "g",
            target: "t".into(),
            geps,
            iterations: 1,
        }
    }

    #[test]
    fn pairs_only_differing_in_dim() {
        let push = StyleConfig::baseline(Algorithm::Sssp, Model::Cpp);
        let mut pull = push;
        pull.flow = Some(Flow::Pull);
        // a third variant differing in another dimension must not pair
        let mut other = push;
        other.determinism = indigo_styles::Determinism::Deterministic;
        let ms = vec![meas(push, 4.0), meas(pull, 2.0), meas(other, 100.0)];
        let rs = ratio_set(&ms, "flow", "push", "pull");
        assert_eq!(rs.len(), 1);
        assert!((rs[0].value - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unpaired_measurements_yield_nothing() {
        let push = StyleConfig::baseline(Algorithm::Sssp, Model::Cpp);
        let ms = vec![meas(push, 4.0)];
        assert!(ratio_set(&ms, "flow", "push", "pull").is_empty());
    }

    #[test]
    fn values_filter_by_algorithm() {
        let push = StyleConfig::baseline(Algorithm::Sssp, Model::Cpp);
        let mut pull = push;
        pull.flow = Some(Flow::Pull);
        let ms = vec![meas(push, 3.0), meas(pull, 1.0)];
        let rs = ratio_set(&ms, "flow", "push", "pull");
        assert_eq!(values_for(&rs, Algorithm::Sssp), vec![3.0]);
        assert!(values_for(&rs, Algorithm::Bfs).is_empty());
    }

    #[test]
    fn median_geps_selects() {
        let cfg = StyleConfig::baseline(Algorithm::Bfs, Model::Cpp);
        let ms = vec![meas(cfg, 1.0), meas(cfg, 5.0), meas(cfg, 3.0)];
        assert_eq!(median_geps(&ms, |_| true), 3.0);
        assert!(median_geps(&ms, |_| false).is_nan());
    }

    #[test]
    fn median_geps_even_length_interpolates() {
        // two selected measurements: the median is their midpoint, matching
        // Summary::compute's q(0.5) — not the upper middle
        let cfg = StyleConfig::baseline(Algorithm::Bfs, Model::Cpp);
        let ms = vec![meas(cfg, 2.0), meas(cfg, 4.0)];
        assert!((median_geps(&ms, |_| true) - 3.0).abs() < 1e-12);
        let ms4 = vec![
            meas(cfg, 1.0),
            meas(cfg, 2.0),
            meas(cfg, 4.0),
            meas(cfg, 8.0),
        ];
        assert!((median_geps(&ms4, |_| true) - 3.0).abs() < 1e-12);
    }

    // Duplicate (peer_key, graph, target, label) handling: keep-first in
    // release builds; debug builds assert on the duplicate. The two tests
    // below split on `debug_assertions` so both behaviors stay pinned.
    fn duplicated_pair() -> Vec<Measurement> {
        let push = StyleConfig::baseline(Algorithm::Sssp, Model::Cpp);
        let mut pull = push;
        pull.flow = Some(Flow::Pull);
        // the second `push` measurement duplicates the first's group+label
        vec![meas(push, 4.0), meas(pull, 2.0), meas(push, 400.0)]
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "duplicate measurement")]
    fn duplicate_pairs_assert_in_debug() {
        ratio_set(&duplicated_pair(), "flow", "push", "pull");
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn duplicate_pairs_keep_first_deterministically() {
        let rs = ratio_set(&duplicated_pair(), "flow", "push", "pull");
        assert_eq!(rs.len(), 1);
        // first occurrence (geps 4.0) wins regardless of later duplicates
        assert!((rs[0].value - 2.0).abs() < 1e-12);
    }
}
