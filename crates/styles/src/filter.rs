//! Config-file variant selection (paper §4.1: "we automated the
//! code-generation process and use configuration files to select the desired
//! versions").
//!
//! The mini-language is one constraint per whitespace-separated token:
//! `dimension=option` or `dimension=opt1|opt2`. A variant matches when every
//! constraint whose dimension applies to it is satisfied; lines starting
//! with `#` are comments.
//!
//! ```
//! use indigo_styles::{enumerate, filter::VariantFilter, Algorithm, Model};
//!
//! let f = VariantFilter::parse("model=cuda flow=push granularity=warp|block").unwrap();
//! let picked = f.apply(&enumerate::variants(Algorithm::Bfs, Model::Cuda));
//! assert!(picked.iter().all(|c| c.name().contains("push")));
//! ```

use crate::config::StyleConfig;

/// A parsed set of constraints.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VariantFilter {
    constraints: Vec<(String, Vec<String>)>,
}

/// Error from [`VariantFilter::parse`].
#[derive(Debug, PartialEq, Eq)]
pub struct FilterError(pub String);

impl std::fmt::Display for FilterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "filter error: {}", self.0)
    }
}

impl std::error::Error for FilterError {}

impl VariantFilter {
    /// Parses filter text (possibly multi-line with `#` comments).
    pub fn parse(text: &str) -> Result<VariantFilter, FilterError> {
        let mut constraints = Vec::new();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("");
            for token in line.split_ascii_whitespace() {
                let (dim, opts) = token
                    .split_once('=')
                    .ok_or_else(|| FilterError(format!("'{token}' is not dimension=option")))?;
                if !StyleConfig::DIMENSIONS.contains(&dim) {
                    return Err(FilterError(format!("unknown dimension '{dim}'")));
                }
                let opts: Vec<String> = opts.split('|').map(str::to_string).collect();
                if opts.iter().any(|o| o.is_empty()) {
                    return Err(FilterError(format!("empty option in '{token}'")));
                }
                constraints.push((dim.to_string(), opts));
            }
        }
        Ok(VariantFilter { constraints })
    }

    /// True when the filter has no constraints (matches everything).
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Does `cfg` satisfy every applicable constraint?
    ///
    /// A constraint on a dimension that does not apply to `cfg` (e.g.
    /// `granularity=warp` against an OpenMP variant) fails the match — asking
    /// for warp variants should never return CPU codes.
    pub fn matches(&self, cfg: &StyleConfig) -> bool {
        self.constraints.iter().all(|(dim, opts)| {
            cfg.dimension_label(dim)
                .map(|l| opts.iter().any(|o| o == l))
                .unwrap_or(false)
        })
    }

    /// Filters a variant list.
    pub fn apply(&self, variants: &[StyleConfig]) -> Vec<StyleConfig> {
        variants
            .iter()
            .copied()
            .filter(|c| self.matches(c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::{Algorithm, Model};
    use crate::enumerate;

    #[test]
    fn parse_and_select() {
        let f = VariantFilter::parse("flow=push update=rmw").unwrap();
        let all = enumerate::variants(Algorithm::Sssp, Model::Cpp);
        let picked = f.apply(&all);
        assert!(!picked.is_empty());
        assert!(picked.len() < all.len());
        for c in picked {
            assert_eq!(c.dimension_label("flow"), Some("push"));
            assert_eq!(c.dimension_label("update"), Some("rmw"));
        }
    }

    #[test]
    fn alternatives_with_pipe() {
        let f = VariantFilter::parse("granularity=warp|block").unwrap();
        let all = enumerate::variants(Algorithm::Bfs, Model::Cuda);
        let picked = f.apply(&all);
        assert!(picked.iter().all(|c| matches!(
            c.dimension_label("granularity"),
            Some("warp") | Some("block")
        )));
        assert!(!picked.is_empty());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let f = VariantFilter::parse("# header\n\nflow=pull # trailing\n").unwrap();
        assert_eq!(f.constraints.len(), 1);
    }

    #[test]
    fn unknown_dimension_rejected() {
        assert!(VariantFilter::parse("colour=red").is_err());
    }

    #[test]
    fn missing_equals_rejected() {
        assert!(VariantFilter::parse("pushy").is_err());
    }

    #[test]
    fn inapplicable_dimension_excludes() {
        // granularity never applies to CPU variants, so this must select none
        let f = VariantFilter::parse("granularity=warp").unwrap();
        let cpu = enumerate::variants(Algorithm::Bfs, Model::Omp);
        assert!(f.apply(&cpu).is_empty());
    }

    #[test]
    fn empty_filter_selects_all() {
        let f = VariantFilter::parse("").unwrap();
        assert!(f.is_empty());
        let all = enumerate::variants(Algorithm::Cc, Model::Cpp);
        assert_eq!(f.apply(&all).len(), all.len());
    }
}
