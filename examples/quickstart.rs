//! Quickstart: generate a graph, pick a style variant, run it on a CPU
//! model and on a simulated GPU, and verify both against the serial oracle.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use indigo_core::{run_variant, verify, GraphInput, Target};
use indigo_gpusim::rtx3090;
use indigo_graph::gen;
use indigo_styles::{Algorithm, Model, StyleConfig};

fn main() {
    // 1. an input graph: a small social-network-like preferential-attachment
    //    graph (the soc-LiveJournal1 family of the paper's Table 4)
    let graph = gen::preferential_attachment(10_000, 9, 42);
    println!(
        "input: {} — {} vertices, {} directed edges",
        graph.name(),
        graph.num_nodes(),
        graph.num_edges()
    );
    let input = GraphInput::new(graph);

    // 2. a style variant: BFS, C++-threads model, the canonical baseline
    //    combination (vertex-based, topology-driven, push, RMW, non-det)
    let cpu_cfg = StyleConfig::baseline(Algorithm::Bfs, Model::Cpp);
    println!("cpu variant: {}", cpu_cfg.name());
    let cpu = run_variant(&cpu_cfg, &input, &Target::cpu(4));
    println!(
        "  -> {:.3} GE/s wall-clock, {} iterations, verified: {}",
        cpu.gigaedges_per_sec(input.num_edges()),
        cpu.iterations,
        verify::check(&cpu_cfg, &input, &cpu.output).is_ok()
    );

    // 3. the same problem in the CUDA model on the simulated RTX 3090,
    //    warp granularity (the paper's recommendation for skewed graphs)
    let mut gpu_cfg = StyleConfig::baseline(Algorithm::Bfs, Model::Cuda);
    gpu_cfg.granularity = Some(indigo_styles::Granularity::Warp);
    println!("gpu variant: {}", gpu_cfg.name());
    let gpu = run_variant(&gpu_cfg, &input, &Target::gpu(rtx3090()));
    println!(
        "  -> {:.3} GE/s simulated, {} iterations, verified: {}",
        gpu.gigaedges_per_sec(input.num_edges()),
        gpu.iterations,
        verify::check(&gpu_cfg, &input, &gpu.output).is_ok()
    );

    // 4. how many programs does the full suite contain?
    let total = indigo_styles::enumerate::full_suite().len();
    println!("the full Indigo2-style suite enumerates {total} programs (paper: 1106)");
}
