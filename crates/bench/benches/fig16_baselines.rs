//! Fig 16 / Table 6 bench: the canonical best-style variants vs the
//! optimized Lonestar/Gardenia-style baselines.

use criterion::Criterion;
use indigo_bench::{bench_cpu_variant, bench_gpu_variant, criterion, input};
use indigo_core::SOURCE;
use indigo_gpusim::rtx3090;
use indigo_graph::gen::SuiteGraph;
use indigo_styles::{Algorithm, Model, StyleConfig};
use std::time::Duration;

fn main() {
    let mut c = criterion();
    let soc = input(SuiteGraph::SocialNetwork);

    // our best-practice styles (per §5.16 guidelines)
    for algo in [
        Algorithm::Bfs,
        Algorithm::Sssp,
        Algorithm::Cc,
        Algorithm::Tc,
    ] {
        let mut gpu = StyleConfig::baseline(algo, Model::Cuda);
        gpu.granularity = Some(indigo_styles::Granularity::Warp);
        bench_gpu_variant(
            &mut c,
            "fig16_suite_best",
            &format!("gpu/{}", algo.label()),
            &gpu,
            &soc,
            rtx3090(),
        );
        let cpu = StyleConfig::baseline(algo, Model::Cpp);
        bench_cpu_variant(
            &mut c,
            "fig16_suite_best",
            &format!("cpu/{}", algo.label()),
            &cpu,
            &soc,
            4,
        );
    }

    // the baselines
    bench_baseline(&mut c, "cpu/bfs", || {
        indigo_baselines::bfs::cpu(&soc, 4, SOURCE).1
    });
    bench_baseline(&mut c, "cpu/sssp", || {
        indigo_baselines::sssp::cpu(&soc, 4, SOURCE).1
    });
    bench_baseline(&mut c, "cpu/cc", || indigo_baselines::cc::cpu(&soc, 4).1);
    bench_baseline(&mut c, "cpu/mis", || indigo_baselines::mis::cpu(&soc, 4).1);
    bench_baseline(&mut c, "cpu/pr", || indigo_baselines::pr::cpu(&soc, 4).1);
    bench_baseline(&mut c, "cpu/tc", || indigo_baselines::tc::cpu(&soc, 4).1);
    bench_baseline(&mut c, "gpu/bfs", || {
        indigo_baselines::bfs::gpu(&soc, rtx3090(), SOURCE).1
    });
    bench_baseline(&mut c, "gpu/sssp", || {
        indigo_baselines::sssp::gpu(&soc, rtx3090(), SOURCE).1
    });
    bench_baseline(&mut c, "gpu/cc", || {
        indigo_baselines::cc::gpu(&soc, rtx3090()).1
    });
    bench_baseline(&mut c, "gpu/tc", || {
        indigo_baselines::tc::gpu(&soc, rtx3090()).1
    });
    c.final_summary();

    fn bench_baseline(c: &mut Criterion, name: &str, run: impl Fn() -> f64) {
        let mut g = c.benchmark_group("fig16_baselines");
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += Duration::from_secs_f64(run().max(1e-12));
                }
                total
            })
        });
        g.finish();
    }
}
