//! The applicability matrix — our analog of the paper's Table 2.
//!
//! Rather than hand-maintaining a second copy of the rules, the matrix is
//! *derived* from the enumerator: a `(dimension, option)` cell is marked `+`
//! for an algorithm iff at least one valid variant of that algorithm uses
//! that option. This keeps Table 2 and the validity predicate consistent by
//! construction.

use crate::config::StyleConfig;
use crate::dims::{Algorithm, Model};
use crate::enumerate;

/// One row of the matrix: a dimension option and its per-algorithm marks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatrixRow {
    /// Dimension key (as accepted by [`StyleConfig::dimension_label`]).
    pub dimension: &'static str,
    /// Option label within the dimension.
    pub option: &'static str,
    /// `true` per algorithm in [`Algorithm::ALL`] order.
    pub applies: [bool; 6],
}

/// The dimension/option pairs of Table 2, in the paper's row order.
const ROWS: &[(&str, &[&str])] = &[
    ("direction", &["vertex", "edge"]),
    ("drive", &["topo", "data-dup", "data-nodup"]),
    ("flow", &["push", "pull"]),
    ("update", &["rw", "rmw"]),
    ("determinism", &["det", "nondet"]),
    ("persistence", &["persist", "nonpersist"]),
    ("granularity", &["thread", "warp", "block"]),
    ("atomic", &["atomic", "cudaatomic"]),
    (
        "gpu_reduction",
        &["global-add", "block-add", "reduction-add"],
    ),
    (
        "cpu_reduction",
        &["atomic-red", "critical-red", "clause-red"],
    ),
    ("omp_schedule", &["default", "dynamic"]),
    ("cpp_schedule", &["blocked", "cyclic"]),
];

/// Computes the full matrix by scanning every valid variant.
pub fn matrix() -> Vec<MatrixRow> {
    // collect per-algorithm sets of used (dimension, option) labels
    let mut used: Vec<std::collections::HashSet<(String, String)>> = vec![Default::default(); 6];
    for cfg in enumerate::full_suite() {
        let ai = Algorithm::ALL
            .iter()
            .position(|&a| a == cfg.algorithm)
            .unwrap();
        for dim in StyleConfig::DIMENSIONS {
            if let Some(opt) = cfg.dimension_label(dim) {
                used[ai].insert((dim.to_string(), opt.to_string()));
            }
        }
    }
    let mut rows = Vec::new();
    for &(dim, options) in ROWS {
        for &opt in options {
            let mut applies = [false; 6];
            for (ai, set) in used.iter().enumerate() {
                applies[ai] = set.contains(&(dim.to_string(), opt.to_string()));
            }
            rows.push(MatrixRow {
                dimension: dim,
                option: opt,
                applies,
            });
        }
    }
    rows
}

/// Renders the matrix as a pipe table (header matches the paper's order:
/// CC, MIS, PR, TC, BFS, SSSP).
pub fn render_matrix() -> String {
    let mut out = String::from("style option | CC | MIS | PR | TC | BFS | SSSP\n");
    for row in matrix() {
        out.push_str(&format!("{}:{}", row.dimension, row.option));
        for a in row.applies {
            out.push_str(if a { " | +" } else { " | -" });
        }
        out.push('\n');
    }
    out
}

/// Renders the Table 3 analog (variant counts per model and algorithm).
pub fn render_counts() -> String {
    let mut out = String::from("Language | CC | MIS | PR | TC | BFS | SSSP | Total\n");
    let mut grand = 0usize;
    for (m, counts, total) in enumerate::count_table() {
        out.push_str(m.display());
        for (_, c) in counts {
            out.push_str(&format!(" | {c}"));
        }
        out.push_str(&format!(" | {total}\n"));
        grand += total;
    }
    out.push_str(&format!("All models | | | | | | | {grand}\n"));
    out
}

/// Convenience: does `algorithm` have any valid variant under `model`?
pub fn supported(algorithm: Algorithm, model: Model) -> bool {
    !enumerate::variants(algorithm, model).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(rows: &'a [MatrixRow], dim: &str, opt: &str) -> &'a MatrixRow {
        rows.iter()
            .find(|r| r.dimension == dim && r.option == opt)
            .unwrap_or_else(|| panic!("missing row {dim}:{opt}"))
    }

    /// Spot-check the derived matrix against the paper's printed Table 2.
    #[test]
    fn matches_paper_table2_highlights() {
        let rows = matrix();
        let [cc, mis, pr, tc, bfs, sssp] = [0, 1, 2, 3, 4, 5];

        // PR is vertex-based only
        assert!(row(&rows, "direction", "vertex").applies[pr]);
        assert!(!row(&rows, "direction", "edge").applies[pr]);
        // edge-based applies everywhere else
        for a in [cc, mis, tc, bfs, sssp] {
            assert!(row(&rows, "direction", "edge").applies[a]);
        }
        // data-driven: not PR, not TC; MIS nodup only
        for a in [pr, tc] {
            assert!(!row(&rows, "drive", "data-dup").applies[a]);
            assert!(!row(&rows, "drive", "data-nodup").applies[a]);
        }
        assert!(!row(&rows, "drive", "data-dup").applies[mis]);
        assert!(row(&rows, "drive", "data-nodup").applies[mis]);
        // read-write: CC/BFS/SSSP only
        for a in [cc, bfs, sssp] {
            assert!(row(&rows, "update", "rw").applies[a]);
        }
        for a in [mis, pr, tc] {
            assert!(!row(&rows, "update", "rw").applies[a]);
        }
        // CudaAtomic: excluded for PR
        assert!(!row(&rows, "atomic", "cudaatomic").applies[pr]);
        assert!(row(&rows, "atomic", "cudaatomic").applies[tc]);
        // reductions: PR and TC only
        for opt in ["global-add", "block-add", "reduction-add"] {
            let r = row(&rows, "gpu_reduction", opt);
            assert_eq!(r.applies, [false, false, true, true, false, false]);
        }
        // schedules apply to every algorithm
        for opt in ["default", "dynamic"] {
            assert_eq!(row(&rows, "omp_schedule", opt).applies, [true; 6]);
        }
    }

    #[test]
    fn render_matrix_has_all_rows() {
        let text = render_matrix();
        let expected_rows: usize = ROWS.iter().map(|(_, o)| o.len()).sum();
        assert_eq!(text.lines().count(), expected_rows + 1);
    }

    #[test]
    fn render_counts_mentions_all_models() {
        let text = render_counts();
        for m in Model::ALL {
            assert!(text.contains(m.display()), "{text}");
        }
    }

    #[test]
    fn all_pairs_supported() {
        for a in Algorithm::ALL {
            for m in Model::ALL {
                assert!(supported(a, m), "{a:?}/{m:?}");
            }
        }
    }
}
