#!/usr/bin/env bash
# Regenerates results/BENCH_serve_baseline.json: the serving-path record
# the serve_perf CI gate compares against (DESIGN.md §7.9).
#
# The probe drives the open-loop load generator against two in-process
# servers — the pre-PR-8 connection-per-request path and the batched
# keep-alive reactor path — and records saturation throughput per mode,
# the batched/unbatched speedup, and the coordinated-omission-safe p99.
#
# Refresh the baseline only after a deliberate serving-path change, on a
# quiet machine; review the diff — it IS the perf contract. The absolute
# 1.5x speedup floor is enforced regardless of what the baseline says.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build -q --release -p indigo-bench --bin serve_perf

target/release/serve_perf > results/BENCH_serve_baseline.json
echo "wrote results/BENCH_serve_baseline.json:"
cat results/BENCH_serve_baseline.json
