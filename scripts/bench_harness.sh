#!/usr/bin/env bash
# Regenerates results/BENCH_harness.json: the end-to-end harness record,
# including the telemetry on-vs-off overhead gate (DESIGN.md §7.5).
#
# Builds indigo-exp twice (default and --features telemetry) and runs the
# smoke slice with each, interleaved. The telemetry build must cost < 3%
# over the default build — recording is a few relaxed fetch_adds per
# launch plus one trace line per cell, so a larger gap means someone put
# work on the hot path outside an `if indigo_obs::enabled()` guard that
# the off build can no longer eliminate. Exits nonzero past the budget.
#
# The gate compares process CPU time (user+sys, min of 4): on a shared
# runner, wall-clock swings far more than 3% run-to-run from background
# load alone, while CPU time only moves with work actually executed.
# Wall-times are recorded alongside for the human-facing trend.
#
#   scripts/bench_harness.sh           measure, gate, rewrite results/
#   scripts/bench_harness.sh --check   measure + gate only (CI)
set -euo pipefail
cd "$(dirname "$0")/.."

mode="write"
[ "${1:-}" = "--check" ] && mode="check"

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

# two binaries: cargo rebuilds in place, so park each aside
cargo build -q --release -p indigo2 --bin indigo-exp
cp target/release/indigo-exp "$out/exp-off"
cargo build -q --release -p indigo2 --bin indigo-exp --features telemetry
cp target/release/indigo-exp "$out/exp-on"

suite_secs() {
    grep -o '"suite_secs": [0-9.]*' "$1/BENCH_harness.json" | grep -o '[0-9.]*'
}

# One smoke run at Small scale (the Tiny slice finishes in milliseconds —
# a 3% gate needs seconds of signal). Sets RUN_WALL (the in-process suite
# wall-time) and RUN_CPU (user+sys seconds of the whole process).
one_run() {
    local t
    TIMEFORMAT='%3U %3S'
    t=$( { time "$1" --smoke --scale small --jobs 1 --sim-workers 1 \
        --out "$2" >/dev/null 2>/dev/null; } 2>&1 )
    RUN_CPU=$(echo "$t" | awk '{ printf "%.3f", $1 + $2 }')
    RUN_WALL=$(suite_secs "$2")
}

# min() over interleaved off/on pairs: interleaving spreads load drift
# across both builds instead of letting one build soak it all
min() { awk -v a="${1:-1e9}" -v b="$2" 'BEGIN { printf "%.3f", (b < a) ? b : a }'; }

off_wall=""
off_cpu=""
off_dir=""
on_wall=""
on_cpu=""
for i in 1 2 3 4; do
    one_run "$out/exp-off" "$out/off$i"
    if [ -z "$off_wall" ] ||
        awk -v a="$off_wall" -v b="$RUN_WALL" 'BEGIN { exit !(b < a) }'; then
        off_dir="$out/off$i"
    fi
    off_wall=$(min "$off_wall" "$RUN_WALL")
    off_cpu=$(min "$off_cpu" "$RUN_CPU")
    one_run "$out/exp-on" "$out/on$i"
    on_wall=$(min "$on_wall" "$RUN_WALL")
    on_cpu=$(min "$on_cpu" "$RUN_CPU")
done

cpu_pct=$(awk -v on="$on_cpu" -v off="$off_cpu" \
    'BEGIN { printf "%.3f", 100 * (on - off) / off }')
wall_pct=$(awk -v on="$on_wall" -v off="$off_wall" \
    'BEGIN { printf "%.3f", 100 * (on - off) / off }')
echo "telemetry overhead: cpu ${on_cpu}s vs ${off_cpu}s (${cpu_pct}%)," \
    "wall ${on_wall}s vs ${off_wall}s (${wall_pct}%); min of 4, budget <3% cpu"
if awk -v p="$cpu_pct" 'BEGIN { exit !(p >= 3.0) }'; then
    echo "FAIL: telemetry build exceeds the 3% CPU overhead budget"
    exit 1
fi

[ "$mode" = "check" ] && exit 0

# the committed record is the best telemetry-off run plus the comparison
head -n -1 "$off_dir/BENCH_harness.json" | sed '$ s/\]$/],/' \
    > results/BENCH_harness.json
cat >> results/BENCH_harness.json <<EOF
  "telemetry": {
    "enabled_build_cpu_secs": $on_cpu,
    "disabled_build_cpu_secs": $off_cpu,
    "cpu_overhead_pct": $cpu_pct,
    "enabled_build_wall_secs": $on_wall,
    "disabled_build_wall_secs": $off_wall,
    "wall_overhead_pct": $wall_pct,
    "budget_pct": 3.0
  }
}
EOF
echo "wrote results/BENCH_harness.json (suite ${off_wall}s)"
