//! Process-wide reuse of worker pools.
//!
//! The measurement harness runs hundreds of thousands of (variant, input,
//! target) cells; spawning a fresh thread team per cell costs a few hundred
//! microseconds of thread creation each — pure overhead that is not part of
//! the kernel time being measured. Two reuse disciplines live here:
//!
//! * [`shared_omp_pool`] hands out one *shared* [`OmpPool`] per thread
//!   count. Sharing is safe because `OmpPool` serializes whole regions
//!   internally (see `omp::Control::region`); callers that want unskewed
//!   wall-clock timings must still avoid running two CPU cells concurrently,
//!   which the harness scheduler guarantees by running wall-clock cells
//!   exclusively.
//! * [`PoolRegistry`] is a generic *lease* cache for pools that must be
//!   exclusive while in use (the GPU simulator's block-execution pool in
//!   `indigo-gpusim` leases from one). [`PoolRegistry::lease`] pops an idle
//!   pool for a key or spawns a fresh one; [`PoolRegistry::give_back`]
//!   returns it for the next leaseholder. Concurrent lessees of the same key
//!   each get their own pool, so no cross-cell serialization sneaks into
//!   measurements.

use crate::OmpPool;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A keyed lease cache for exclusive-use worker pools.
///
/// Pools are keyed by an integer (conventionally the worker count). A lease
/// removes a pool from the cache — two concurrent lessees of the same key
/// never share — and `give_back` re-caches it for the next lease. The
/// registry itself is cheap to create; declare it as a `static`.
pub struct PoolRegistry<P> {
    idle: OnceLock<Mutex<HashMap<usize, Vec<P>>>>,
}

impl<P> PoolRegistry<P> {
    /// An empty registry (const, for statics).
    pub const fn new() -> Self {
        PoolRegistry {
            idle: OnceLock::new(),
        }
    }

    fn map(&self) -> &Mutex<HashMap<usize, Vec<P>>> {
        self.idle.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Takes an idle pool for `key`, or builds one with `spawn`. The caller
    /// has exclusive use until [`PoolRegistry::give_back`].
    pub fn lease(&self, key: usize, spawn: impl FnOnce() -> P) -> P {
        let cached = {
            let mut map = self.map().lock().unwrap_or_else(|e| e.into_inner());
            map.get_mut(&key).and_then(Vec::pop)
        };
        match cached {
            Some(pool) => {
                if indigo_obs::enabled() {
                    indigo_obs::Counter::ExecLeaseHits.incr();
                }
                pool
            }
            None => {
                if indigo_obs::enabled() {
                    indigo_obs::Counter::ExecLeaseMisses.incr();
                }
                spawn()
            }
        }
    }

    /// Returns a leased pool to the idle cache for `key`.
    pub fn give_back(&self, key: usize, pool: P) {
        let mut map = self.map().lock().unwrap_or_else(|e| e.into_inner());
        map.entry(key).or_default().push(pool);
    }

    /// [`PoolRegistry::lease`] wrapped in an RAII guard: the pool is given
    /// back automatically when the [`Lease`] drops, so kernels cannot leak
    /// pools on early returns or panics. Requires a `'static` registry
    /// (declare it as a `static`), which every caller already has.
    pub fn lease_guard(&'static self, key: usize, spawn: impl FnOnce() -> P) -> Lease<P> {
        Lease {
            reg: self,
            key,
            val: Some(self.lease(key, spawn)),
        }
    }

    /// Number of idle pools currently cached (for tests/diagnostics).
    pub fn idle_count(&self) -> usize {
        self.idle.get().map_or(0, |m| {
            m.lock()
                .unwrap_or_else(|e| e.into_inner())
                .values()
                .map(Vec::len)
                .sum()
        })
    }
}

impl<P> Default for PoolRegistry<P> {
    fn default() -> Self {
        Self::new()
    }
}

/// An exclusive lease on a pooled resource; returns it to the registry on
/// drop. Dereferences to the resource, so call sites read as if they owned
/// it directly.
pub struct Lease<P: 'static> {
    reg: &'static PoolRegistry<P>,
    key: usize,
    val: Option<P>,
}

impl<P> std::ops::Deref for Lease<P> {
    type Target = P;
    fn deref(&self) -> &P {
        self.val.as_ref().expect("lease taken")
    }
}

impl<P> std::ops::DerefMut for Lease<P> {
    fn deref_mut(&mut self) -> &mut P {
        self.val.as_mut().expect("lease taken")
    }
}

impl<P> Drop for Lease<P> {
    fn drop(&mut self) {
        if let Some(val) = self.val.take() {
            self.reg.give_back(self.key, val);
        }
    }
}

static POOLS: OnceLock<Mutex<HashMap<usize, Arc<OmpPool>>>> = OnceLock::new();

/// Returns the shared pool with `threads` workers, spawning it on first use.
pub fn shared_omp_pool(threads: usize) -> Arc<OmpPool> {
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = pools.lock().unwrap();
    if indigo_obs::enabled() {
        let counter = if map.contains_key(&threads) {
            indigo_obs::Counter::ExecLeaseHits
        } else {
            indigo_obs::Counter::ExecLeaseMisses
        };
        counter.incr();
    }
    Arc::clone(
        map.entry(threads)
            .or_insert_with(|| Arc::new(OmpPool::new(threads))),
    )
}

/// Number of distinct shared OMP pools currently cached.
pub fn cached_pool_count() -> usize {
    POOLS.get().map_or(0, |p| p.lock().unwrap().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn same_thread_count_returns_same_pool() {
        let a = shared_omp_pool(2);
        let b = shared_omp_pool(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.num_threads(), 2);
    }

    #[test]
    fn distinct_thread_counts_get_distinct_pools() {
        let a = shared_omp_pool(2);
        let b = shared_omp_pool(3);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(cached_pool_count() >= 2);
    }

    #[test]
    fn shared_pool_survives_concurrent_regions() {
        // two threads hammer the same cached pool; the region lock must
        // serialize them without losing iterations
        let pool = shared_omp_pool(2);
        let count = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let pool = Arc::clone(&pool);
                let count = &count;
                s.spawn(move || {
                    for _ in 0..50 {
                        pool.parallel_for(10, crate::Schedule::Default, |_, _| {
                            count.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn registry_leases_are_exclusive_and_reused() {
        static REG: PoolRegistry<Box<usize>> = PoolRegistry::new();
        let a = REG.lease(4, || Box::new(1));
        let b = REG.lease(4, || Box::new(2)); // concurrent lease spawns fresh
        assert_eq!((*a, *b), (1, 2));
        REG.give_back(4, a);
        assert_eq!(REG.idle_count(), 1);
        let again = REG.lease(4, || Box::new(3)); // reuse, not spawn
        assert_eq!(*again, 1);
        assert_eq!(REG.idle_count(), 0);
        REG.give_back(4, again);
        REG.give_back(4, b);
    }

    #[test]
    fn registry_keys_are_independent() {
        static REG: PoolRegistry<usize> = PoolRegistry::new();
        REG.give_back(1, 10);
        REG.give_back(2, 20);
        assert_eq!(REG.lease(2, || 0), 20);
        assert_eq!(REG.lease(1, || 0), 10);
        assert_eq!(REG.lease(1, || 99), 99); // key 1 drained
    }
}
