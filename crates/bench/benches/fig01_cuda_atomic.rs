//! Fig 1 bench: Atomic vs default CudaAtomic on both simulated GPUs
//! (SSSP and TC — TC shows the mild penalty, §5.1).

use indigo_bench::{bench_gpu_variant, criterion, input};
use indigo_gpusim::{rtx3090, titan_v};
use indigo_graph::gen::SuiteGraph;
use indigo_styles::{Algorithm, AtomicKind, Model, StyleConfig};

fn main() {
    let mut c = criterion();
    let rmat = input(SuiteGraph::Rmat);
    for (dev_name, device) in [("titanv", titan_v()), ("rtx3090", rtx3090())] {
        for algo in [Algorithm::Sssp, Algorithm::Tc] {
            for kind in AtomicKind::ALL {
                let mut cfg = StyleConfig::baseline(algo, Model::Cuda);
                cfg.atomic = Some(kind);
                if cfg.check().is_err() {
                    continue; // e.g. PR excludes CudaAtomic
                }
                bench_gpu_variant(
                    &mut c,
                    "fig01_cuda_atomic",
                    &format!("{dev_name}/{}/{}", algo.label(), kind.label()),
                    &cfg,
                    &rmat,
                    device,
                );
            }
        }
    }
    c.final_summary();
}
