//! Prepared program input: one graph in every layout the styles need.
//!
//! The paper stores each input twice — CSR for vertex-based codes, COO for
//! edge-based codes (§4.2) — and the SSSP codes need weights. [`GraphInput`]
//! prepares all of that once so the measured region of every run contains
//! only the algorithm itself, as in the paper's methodology.

use indigo_graph::{Coo, Csr};
use std::sync::OnceLock;

/// Lazily-computed serial reference solutions for one input graph.
///
/// Verification (`verify::check`) runs once per matrix cell, but the
/// expected answer only depends on the graph and process-wide constants —
/// recomputing the serial reference for each of the hundreds of cells that
/// share a graph dominated verification cost. Each slot is computed on
/// first use and shared by every subsequent cell (thread-safe; concurrent
/// initialization races are benign because the references are
/// deterministic).
#[derive(Default)]
pub(crate) struct ReferenceCache {
    pub bfs: OnceLock<Vec<u32>>,
    pub sssp: OnceLock<Vec<u32>>,
    pub cc: OnceLock<Vec<u32>>,
    pub mis: OnceLock<Vec<bool>>,
    pub pr: OnceLock<Vec<f32>>,
    pub tc: OnceLock<u64>,
}

/// A fully-prepared input graph.
pub struct GraphInput {
    /// CSR layout; weighted iff the source graph was (or had synthetic
    /// weights attached).
    pub csr: Csr,
    /// COO layout derived from `csr` (identical edge order).
    pub coo: Coo,
    /// Memoized serial reference solutions (see [`ReferenceCache`]).
    pub(crate) refs: ReferenceCache,
}

impl GraphInput {
    /// Prepares `g`, attaching deterministic synthetic weights when the
    /// graph has none (the paper runs SSSP on all five inputs).
    pub fn new(g: Csr) -> Self {
        let csr = if g.is_weighted() {
            g
        } else {
            g.with_synthetic_weights()
        };
        let coo = Coo::from_csr(&csr);
        GraphInput {
            csr,
            coo,
            refs: ReferenceCache::default(),
        }
    }

    /// Input display name.
    pub fn name(&self) -> &str {
        self.csr.name()
    }

    /// Vertex count.
    pub fn num_nodes(&self) -> usize {
        self.csr.num_nodes()
    }

    /// Directed edge count (the paper's throughput denominator).
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indigo_graph::gen::toy;

    #[test]
    fn attaches_weights_when_missing() {
        let input = GraphInput::new(toy::path(4));
        assert!(input.csr.is_weighted());
        assert!(input.coo.is_weighted());
    }

    #[test]
    fn keeps_existing_weights() {
        let g = toy::weighted_diamond();
        let w = g.weights().to_vec();
        let input = GraphInput::new(g);
        assert_eq!(input.csr.weights(), &w[..]);
    }

    #[test]
    fn layouts_agree() {
        let input = GraphInput::new(toy::complete(5));
        assert_eq!(input.num_nodes(), 5);
        assert_eq!(input.num_edges(), 20);
        assert_eq!(input.coo.num_edges(), input.csr.num_edges());
    }
}
