//! Deterministic synthetic edge weights.
//!
//! The paper's SSSP codes run on weighted versions of all five inputs; the
//! DIMACS road graph ships with real weights, the others receive synthetic
//! ones. We derive a weight purely from the (unordered) edge endpoints with a
//! strong integer mix, so the weight is stable across layouts, directions,
//! runs, and machines.

use crate::{NodeId, Weight};

/// Largest synthetic weight; kept small so `u32` distances can never
/// approach [`crate::INF`] on the graph scales the suite generates.
pub const MAX_WEIGHT: Weight = 255;

/// splitmix64 finalizer — a well-distributed 64-bit mix.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Weight of the undirected edge `{a, b}`, in `1..=MAX_WEIGHT`.
///
/// Symmetric by construction: the endpoints are ordered before mixing.
#[inline]
pub fn edge_weight(a: NodeId, b: NodeId) -> Weight {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let h = mix64(((hi as u64) << 32) | lo as u64);
    (h % MAX_WEIGHT as u64) as Weight + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric() {
        for a in 0..50u32 {
            for b in 0..50u32 {
                assert_eq!(edge_weight(a, b), edge_weight(b, a));
            }
        }
    }

    #[test]
    fn in_range() {
        for a in 0..1000u32 {
            let w = edge_weight(a, a.wrapping_mul(2654435761) % 1000);
            assert!((1..=MAX_WEIGHT).contains(&w));
        }
    }

    #[test]
    fn reasonably_spread() {
        // weights should hit many distinct values, not collapse
        let mut seen = std::collections::HashSet::new();
        for a in 0..500u32 {
            seen.insert(edge_weight(a, a + 1));
        }
        assert!(seen.len() > 100, "only {} distinct weights", seen.len());
    }

    #[test]
    fn mix64_is_not_identity() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }
}
