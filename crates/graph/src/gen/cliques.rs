//! Clique-overlap generator — the `coPapersDBLP` family.
//!
//! Co-authorship graphs are unions of cliques: every paper links all of its
//! authors pairwise. That structure explains coPapersDBLP's signature stats
//! (d_avg 56.4 — over half the vertices have degree ≥ 32 — but d_max only
//! 3 299, diameter 24). We reproduce it directly: sample "papers" with a
//! heavy-tailed author count, draw authors from a local community window
//! (with occasional global collaborators), and add each paper as a clique.

use super::random::SplitMix;
use crate::{Csr, GraphBuilder, NodeId};

/// Generates a clique-overlap collaboration graph on `n` authors.
///
/// `papers_per_author` controls density; the paper-size distribution is a
/// truncated Zipf over `2..=max_paper`, and authors of one paper are drawn
/// from a window of `community` consecutive ids around an anchor.
pub fn clique_overlap(n: usize, papers_per_author: f64, seed: u64) -> Csr {
    assert!(n >= 4, "need at least 4 authors");
    let mut rng = SplitMix::new(seed ^ 0x636f_5061); // "coPa"
    let mut b = GraphBuilder::new(n);
    let num_papers = (n as f64 * papers_per_author) as usize;
    let max_paper = 24usize;
    let community = 64usize.min(n);

    for _ in 0..num_papers {
        // truncated zipf(1.2) over paper sizes 2..=max_paper
        let size = zipf(&mut rng, 2, max_paper, 1.2);
        // quadratic anchor bias: some communities publish far more than
        // others, spreading the degree distribution the way real
        // co-authorship graphs do (half of coPapersDBLP sits below degree 32)
        let raw = rng.below(n as u64);
        let anchor = ((raw * raw) / n as u64) as usize;
        let mut authors: Vec<NodeId> = Vec::with_capacity(size);
        let mut guard = 0;
        while authors.len() < size && guard < 32 * size {
            guard += 1;
            let a = if rng.f64() < 0.85 {
                // local collaborator from the community window
                let off = rng.below(community as u64) as usize;
                ((anchor + off) % n) as NodeId
            } else {
                rng.below(n as u64) as NodeId
            };
            if !authors.contains(&a) {
                authors.push(a);
            }
        }
        for i in 0..authors.len() {
            for j in i + 1..authors.len() {
                b.add_edge(authors[i], authors[j]);
            }
        }
    }
    b.build(format!("copapers-{n}"))
}

/// Truncated Zipf sample in `[lo, hi]` with exponent `s`, by inverse CDF.
fn zipf(rng: &mut SplitMix, lo: usize, hi: usize, s: f64) -> usize {
    debug_assert!(lo <= hi);
    let norm: f64 = (lo..=hi).map(|k| (k as f64).powf(-s)).sum();
    let mut u = rng.f64() * norm;
    for k in lo..=hi {
        u -= (k as f64).powf(-s);
        if u <= 0.0 {
            return k;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn deterministic() {
        assert_eq!(clique_overlap(400, 2.0, 5), clique_overlap(400, 2.0, 5));
    }

    #[test]
    fn family_properties_dense_collaboration() {
        let g = clique_overlap(3000, 3.0, 42);
        let s = GraphStats::compute(&g);
        // high average degree with a large share of deg >= 32 vertices
        assert!(s.avg_degree > 20.0, "d_avg {}", s.avg_degree);
        assert!(s.pct_deg_ge32 > 20.0, "pct>=32 {}", s.pct_deg_ge32);
        // but no extreme hubs: dmax within ~2 orders of magnitude of avg
        assert!(
            (s.max_degree as f64) < 60.0 * s.avg_degree,
            "d_max {}",
            s.max_degree
        );
        // low diameter on the giant component
        assert!(s.diameter_lb <= 24, "diameter {}", s.diameter_lb);
    }

    #[test]
    fn zipf_range_respected() {
        let mut rng = SplitMix::new(1);
        for _ in 0..500 {
            let k = zipf(&mut rng, 2, 24, 1.2);
            assert!((2..=24).contains(&k));
        }
    }

    #[test]
    fn zipf_favors_small() {
        let mut rng = SplitMix::new(2);
        let draws: Vec<usize> = (0..2000).map(|_| zipf(&mut rng, 2, 24, 1.2)).collect();
        let small = draws.iter().filter(|&&k| k <= 6).count();
        assert!(small > draws.len() / 2, "small draws: {small}");
    }
}
