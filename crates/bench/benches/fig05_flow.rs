//! Fig 5 bench: push vs pull on all three models (BFS on the grid, where
//! push's INF-skip matters most, and PR where pull wins).

use indigo_bench::{bench_cpu_variant, bench_gpu_variant, criterion, input};
use indigo_gpusim::rtx3090;
use indigo_graph::gen::SuiteGraph;
use indigo_styles::{Algorithm, Determinism, Flow, Model, StyleConfig};

fn main() {
    let mut c = criterion();
    let grid = input(SuiteGraph::Grid2d);
    for algo in [Algorithm::Bfs, Algorithm::Pr] {
        for flow in Flow::ALL {
            let mut gpu = StyleConfig::baseline(algo, Model::Cuda);
            gpu.flow = Some(flow);
            if algo == Algorithm::Pr {
                gpu.determinism = Determinism::Deterministic;
            }
            if gpu.check().is_ok() {
                bench_gpu_variant(
                    &mut c,
                    "fig05_flow_gpu",
                    &format!("{}/{}", algo.label(), flow.label()),
                    &gpu,
                    &grid,
                    rtx3090(),
                );
            }
            let mut cpu = StyleConfig::baseline(algo, Model::Omp);
            cpu.flow = Some(flow);
            if algo == Algorithm::Pr {
                cpu.determinism = Determinism::Deterministic;
            }
            if cpu.check().is_ok() {
                bench_cpu_variant(
                    &mut c,
                    "fig05_flow_cpu",
                    &format!("{}/{}", algo.label(), flow.label()),
                    &cpu,
                    &grid,
                    4,
                );
            }
        }
    }
    c.final_summary();
}
