//! Data-driven style advisor — the paper's §5.13/§5.16 payoff as a predictor.
//!
//! The study's central lesson is that the best implementation style is
//! predictable from graph structure (degree distribution and diameter)
//! without running the full 1106-program sweep. This crate productizes that:
//! [`Advisor::fit`] consumes journal-measured sweep cells (variant, graph,
//! throughput) plus per-graph [`FeatureVector`]s, and [`Advisor::advise`]
//! predicts a ranked list of style combinations for an *unseen* graph.
//!
//! The model is deliberately interpretable, two-layered:
//!
//! 1. **Nearest-neighbor** over the training graphs in a normalized
//!    log-feature space: if the query graph is close to a measured graph
//!    (within [`OOD_DISTANCE`]), reuse that graph's measured ranking. This is
//!    exact where it applies — the paper's Table 9 "same family ⇒ same best
//!    style" observation.
//! 2. **Correlation rules** as the out-of-distribution fallback: per style
//!    option, the Pearson correlation of relative performance against each
//!    graph property (the §5.13 `corr513` computation, refit from the
//!    training cells rather than hard-coded), combined linearly over the
//!    query's standardized features to score every candidate variant.
//!
//! Everything is deterministic: ties break on variant name, and fitting the
//! same cells always yields the same advisor.

use std::collections::HashMap;

pub use indigo_graph::stats::{FeatureVector, FEATURE_NAMES, NUM_FEATURES};
use indigo_styles::{enumerate, Algorithm, Model, StyleConfig};

/// One journal-measured sweep cell, the advisor's training unit.
#[derive(Clone, Debug)]
pub struct TrainingCell {
    pub algo: Algorithm,
    pub model: Model,
    /// Graph label (e.g. `"rmat"`).
    pub graph: String,
    /// Variant name as produced by [`StyleConfig::name`].
    pub variant: String,
    /// Measured features of `graph` at the training scale.
    pub features: FeatureVector,
    /// Measured throughput (giga-edges/s).
    pub geps: f64,
}

/// Normalized nearest-neighbor distance beyond which a query graph is
/// treated as out-of-distribution and the correlation rules take over.
pub const OOD_DISTANCE: f64 = 2.0;

/// How a prediction was made.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Reused the measured ranking of the nearest training graph.
    NearestNeighbor,
    /// Scored candidates with the fitted §5.13 correlation rules.
    CorrelationRules,
    /// No training data for this (algorithm, model); canonical baseline.
    Baseline,
}

impl Method {
    /// Stable lowercase label for reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Method::NearestNeighbor => "nearest-neighbor",
            Method::CorrelationRules => "correlation-rules",
            Method::Baseline => "baseline",
        }
    }
}

/// The advisor's answer for one (algorithm, model, graph) query.
#[derive(Clone, Debug)]
pub struct Advice {
    /// Candidate variant names, best predicted first. Never empty.
    pub ranked: Vec<String>,
    pub method: Method,
    /// Nearest training graph and its normalized feature distance, when any
    /// training graphs exist (informational even on the rules path).
    pub neighbor: Option<(String, f64)>,
}

impl Advice {
    /// The predicted-best variant name.
    pub fn best(&self) -> &str {
        &self.ranked[0]
    }
}

/// One fitted §5.16-style rule: how strongly a style option's relative
/// performance tracks one graph property across the training graphs.
#[derive(Clone, Debug)]
pub struct Rule {
    pub dimension: &'static str,
    pub option: &'static str,
    /// The most-correlated property ([`FEATURE_NAMES`] entry).
    pub property: &'static str,
    pub correlation: f64,
}

struct GraphEntry {
    label: String,
    z: [f64; NUM_FEATURES],
}

struct OptionFit {
    dimension: &'static str,
    option: &'static str,
    /// Pearson correlation of the option's relative performance against each
    /// (transformed) feature, across training graphs.
    corr: [f64; NUM_FEATURES],
}

struct GroupFit {
    /// Per training-graph ranking of measured variants, best first.
    rankings: HashMap<String, Vec<String>>,
    /// All variant names measured in this group, sorted.
    variants: Vec<String>,
    /// Name → enumerated config (for rule scoring).
    configs: HashMap<String, StyleConfig>,
    options: Vec<OptionFit>,
}

/// The fitted model. See the crate docs for the two-layer design.
pub struct Advisor {
    graphs: Vec<GraphEntry>,
    groups: HashMap<(Algorithm, Model), GroupFit>,
    /// Per-feature (mean, std) of the transformed training features;
    /// std = 0 marks a dimension with no training variance (ignored).
    norms: [(f64, f64); NUM_FEATURES],
    cells: usize,
}

impl Advisor {
    /// Fits the model from measured cells. Cells with non-finite or
    /// non-positive throughput are ignored. An empty slice yields an advisor
    /// that always answers [`Method::Baseline`].
    pub fn fit(cells: &[TrainingCell]) -> Advisor {
        let cells: Vec<&TrainingCell> = cells
            .iter()
            .filter(|c| c.geps.is_finite() && c.geps > 0.0)
            .collect();

        // Distinct graphs (first occurrence wins) and feature normalization.
        let mut feats: Vec<(String, [f64; NUM_FEATURES])> = Vec::new();
        for c in &cells {
            if !feats.iter().any(|(l, _)| *l == c.graph) {
                feats.push((c.graph.clone(), transform(&c.features)));
            }
        }
        let norms = fit_norms(&feats);
        let graphs = feats
            .iter()
            .map(|(label, t)| GraphEntry {
                label: label.clone(),
                z: zscore(t, &norms),
            })
            .collect();

        // Group cells by (algorithm, model).
        let mut by_group: HashMap<(Algorithm, Model), Vec<&TrainingCell>> = HashMap::new();
        for c in &cells {
            by_group.entry((c.algo, c.model)).or_default().push(c);
        }
        let feat_of = |label: &str| feats.iter().find(|(l, _)| l == label).map(|(_, t)| *t);
        let groups = by_group
            .into_iter()
            .map(|((algo, model), cs)| ((algo, model), fit_group(algo, model, &cs, &feat_of)))
            .collect();

        Advisor {
            graphs,
            groups,
            norms,
            cells: cells.len(),
        }
    }

    /// Number of usable training cells.
    pub fn num_cells(&self) -> usize {
        self.cells
    }

    /// Number of distinct training graphs.
    pub fn num_graphs(&self) -> usize {
        self.graphs.len()
    }

    /// Number of fitted (algorithm, model) groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The fitted (algorithm, model) groups, sorted for determinism.
    pub fn fitted_groups(&self) -> Vec<(Algorithm, Model)> {
        let mut g: Vec<_> = self.groups.keys().copied().collect();
        g.sort();
        g
    }

    /// The training-covered variant names for one group, sorted.
    pub fn candidates(&self, algo: Algorithm, model: Model) -> Option<&[String]> {
        self.groups
            .get(&(algo, model))
            .map(|g| g.variants.as_slice())
    }

    /// Predicts a ranked list of variants for a graph with features `f`.
    pub fn advise(&self, algo: Algorithm, model: Model, f: &FeatureVector) -> Advice {
        let zq = zscore(&transform(f), &self.norms);
        let neighbor = self
            .graphs
            .iter()
            .map(|g| (g.label.clone(), distance(&zq, &g.z, &self.norms)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));

        let Some(group) = self.groups.get(&(algo, model)) else {
            return Advice {
                ranked: vec![StyleConfig::baseline(algo, model).name()],
                method: Method::Baseline,
                neighbor,
            };
        };

        // Rule scores order the OOD path and break NN ties for variants the
        // neighbor graph never measured.
        let mut scored: Vec<(String, f64)> = group
            .variants
            .iter()
            .map(|v| (v.clone(), rule_score(group, v, &zq)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

        if let Some((label, dist)) = &neighbor {
            if *dist <= OOD_DISTANCE {
                if let Some(ranking) = group.rankings.get(label) {
                    let mut ranked = ranking.clone();
                    for (v, _) in &scored {
                        if !ranked.contains(v) {
                            ranked.push(v.clone());
                        }
                    }
                    return Advice {
                        ranked,
                        method: Method::NearestNeighbor,
                        neighbor,
                    };
                }
            }
        }

        Advice {
            ranked: scored.into_iter().map(|(v, _)| v).collect(),
            method: Method::CorrelationRules,
            neighbor,
        }
    }

    /// The fitted §5.16-style rules for one group, strongest first: each
    /// measured style option paired with its most-correlated graph property.
    /// This is what `examples/style_advisor.rs` prints instead of hard-coded
    /// thresholds — guidance and predictions come from one fit.
    pub fn guidelines(&self, algo: Algorithm, model: Model) -> Vec<Rule> {
        let Some(group) = self.groups.get(&(algo, model)) else {
            return Vec::new();
        };
        let mut rules: Vec<Rule> = group
            .options
            .iter()
            .filter_map(|of| {
                let (k, &c) = of
                    .corr
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))?;
                if c.abs() < 0.05 {
                    return None; // no signal measured for this option
                }
                Some(Rule {
                    dimension: of.dimension,
                    option: of.option,
                    property: FEATURE_NAMES[k],
                    correlation: c,
                })
            })
            .collect();
        rules.sort_by(|a, b| {
            b.correlation
                .abs()
                .total_cmp(&a.correlation.abs())
                .then_with(|| (a.dimension, a.option).cmp(&(b.dimension, b.option)))
        });
        rules
    }
}

fn fit_group(
    algo: Algorithm,
    model: Model,
    cells: &[&TrainingCell],
    feat_of: &dyn Fn(&str) -> Option<[f64; NUM_FEATURES]>,
) -> GroupFit {
    // Median throughput per (graph, variant).
    let mut samples: HashMap<(String, String), Vec<f64>> = HashMap::new();
    for c in cells {
        samples
            .entry((c.graph.clone(), c.variant.clone()))
            .or_default()
            .push(c.geps);
    }
    let medians: HashMap<(String, String), f64> = samples
        .into_iter()
        .map(|(k, mut v)| {
            v.sort_by(f64::total_cmp);
            let m = median_sorted(&v);
            (k, m)
        })
        .collect();

    let mut variants: Vec<String> = medians.keys().map(|(_, v)| v.clone()).collect();
    variants.sort();
    variants.dedup();
    let mut graph_labels: Vec<String> = medians.keys().map(|(g, _)| g.clone()).collect();
    graph_labels.sort();
    graph_labels.dedup();

    // Per-graph ranking, best first (ties on name for determinism).
    let mut rankings = HashMap::new();
    for g in &graph_labels {
        let mut ranked: Vec<(String, f64)> = variants
            .iter()
            .filter_map(|v| {
                medians
                    .get(&(g.clone(), v.clone()))
                    .map(|&m| (v.clone(), m))
            })
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rankings.insert(g.clone(), ranked.into_iter().map(|(v, _)| v).collect());
    }

    // Resolve names back to configs for dimension-label access.
    let configs: HashMap<String, StyleConfig> = enumerate::variants(algo, model)
        .into_iter()
        .map(|c| (c.name(), c))
        .collect();

    // Refit the §5.13 correlations from the training cells: for every style
    // option observed, relative performance per graph vs every feature.
    let mut options = Vec::new();
    for dim in StyleConfig::DIMENSIONS {
        if dim == "algo" || dim == "model" {
            continue;
        }
        let mut opts: Vec<&'static str> = variants
            .iter()
            .filter_map(|v| configs.get(v).and_then(|c| c.dimension_label(dim)))
            .collect();
        opts.sort_unstable();
        opts.dedup();
        if opts.len() < 2 {
            continue; // no contrast measured along this dimension
        }
        for opt in opts {
            let mut rel = Vec::new();
            let mut props: Vec<Vec<f64>> = vec![Vec::new(); NUM_FEATURES];
            for g in &graph_labels {
                let med = |pred: &dyn Fn(&StyleConfig) -> bool| {
                    let mut vals: Vec<f64> = variants
                        .iter()
                        .filter(|v| configs.get(*v).is_some_and(pred))
                        .filter_map(|v| medians.get(&(g.clone(), v.clone())))
                        .copied()
                        .collect();
                    vals.sort_by(f64::total_cmp);
                    median_sorted(&vals)
                };
                let with = med(&|c| c.dimension_label(dim) == Some(opt));
                let all = med(&|c| c.dimension_label(dim).is_some());
                if with.is_finite() && all.is_finite() && all > 0.0 {
                    if let Some(t) = feat_of(g) {
                        rel.push(with / all);
                        for (k, tv) in t.iter().enumerate() {
                            props[k].push(*tv);
                        }
                    }
                }
            }
            let mut corr = [0.0; NUM_FEATURES];
            for k in 0..NUM_FEATURES {
                let c = pearson(&props[k], &rel);
                corr[k] = if c.is_finite() { c } else { 0.0 };
            }
            options.push(OptionFit {
                dimension: dim,
                option: opt,
                corr,
            });
        }
    }

    GroupFit {
        rankings,
        variants,
        configs,
        options,
    }
}

/// Linear rule score of one candidate: the sum, over the candidate's style
/// options, of the option's feature correlations dotted with the query's
/// standardized features. Higher is better.
fn rule_score(group: &GroupFit, variant: &str, zq: &[f64; NUM_FEATURES]) -> f64 {
    let Some(cfg) = group.configs.get(variant) else {
        return 0.0;
    };
    let mut score = 0.0;
    for of in &group.options {
        if cfg.dimension_label(of.dimension) == Some(of.option) {
            for (c, z) in of.corr.iter().zip(zq) {
                score += c * z;
            }
        }
    }
    score
}

/// Log-compresses the count-like features; percentages stay linear. Distances
/// in this space compare graphs by shape rather than raw size.
fn transform(f: &FeatureVector) -> [f64; NUM_FEATURES] {
    let mut t = f.0;
    for (i, name) in FEATURE_NAMES.iter().enumerate() {
        if !name.starts_with("pct_") {
            t[i] = (1.0 + t[i].max(0.0)).ln();
        }
    }
    t
}

fn fit_norms(feats: &[(String, [f64; NUM_FEATURES])]) -> [(f64, f64); NUM_FEATURES] {
    let mut norms = [(0.0, 0.0); NUM_FEATURES];
    let n = feats.len();
    if n == 0 {
        return norms;
    }
    for (k, norm) in norms.iter_mut().enumerate() {
        let mean = feats.iter().map(|(_, t)| t[k]).sum::<f64>() / n as f64;
        let var = feats
            .iter()
            .map(|(_, t)| (t[k] - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        *norm = (mean, var.sqrt());
    }
    norms
}

fn zscore(t: &[f64; NUM_FEATURES], norms: &[(f64, f64); NUM_FEATURES]) -> [f64; NUM_FEATURES] {
    let mut z = [0.0; NUM_FEATURES];
    for k in 0..NUM_FEATURES {
        let (mean, std) = norms[k];
        if std > 0.0 {
            z[k] = (t[k] - mean) / std;
        }
    }
    z
}

/// Feature indices used for nearest-neighbor distance: the *shape* features
/// the paper correlates against (§5.13) — degree statistics and diameter.
/// Raw size (nodes, edges, components) is deliberately excluded so a graph
/// is matched to the training family it resembles, not to whichever training
/// graph happens to be the same size.
const DIST_FEATURES: [usize; 5] = [2, 3, 4, 5, 6];

/// RMS distance over the shape dimensions with training variance.
fn distance(
    a: &[f64; NUM_FEATURES],
    b: &[f64; NUM_FEATURES],
    norms: &[(f64, f64); NUM_FEATURES],
) -> f64 {
    let mut sum = 0.0;
    let mut active = 0usize;
    for k in DIST_FEATURES {
        if norms[k].1 > 0.0 {
            sum += (a[k] - b[k]).powi(2);
            active += 1;
        }
    }
    if active == 0 {
        0.0
    } else {
        (sum / active as f64).sqrt()
    }
}

/// Median of an already-sorted slice (interpolating for even lengths);
/// NaN when empty.
fn median_sorted(v: &[f64]) -> f64 {
    let n = v.len();
    if n == 0 {
        f64::NAN
    } else if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Pearson correlation coefficient; 0 when either side has no variance.
fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return 0.0;
    }
    let (xs, ys) = (&xs[..n], &ys[..n]);
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(avg: f64, max: f64, p32: f64, p512: f64, diam: f64) -> FeatureVector {
        FeatureVector([1000.0, 1000.0 * avg, avg, max, p32, p512, diam, 1.0])
    }

    fn cell(
        algo: Algorithm,
        model: Model,
        graph: &str,
        variant: &str,
        features: FeatureVector,
        geps: f64,
    ) -> TrainingCell {
        TrainingCell {
            algo,
            model,
            graph: graph.into(),
            variant: variant.into(),
            features,
            geps,
        }
    }

    /// Two synthetic training graphs with real variant names: a "mesh" where
    /// variant A wins and a "social" where variant B wins.
    fn toy_advisor() -> (Advisor, String, String, FeatureVector, FeatureVector) {
        let variants = enumerate::variants(Algorithm::Bfs, Model::Cuda);
        let a = variants[0].name();
        let b = variants[1].name();
        let mesh = fv(4.0, 4.0, 0.0, 0.0, 120.0);
        let soc = fv(18.0, 600.0, 12.0, 0.1, 5.0);
        let cells = vec![
            cell(Algorithm::Bfs, Model::Cuda, "mesh", &a, mesh, 2.0),
            cell(Algorithm::Bfs, Model::Cuda, "mesh", &b, mesh, 1.0),
            cell(Algorithm::Bfs, Model::Cuda, "soc", &a, soc, 1.0),
            cell(Algorithm::Bfs, Model::Cuda, "soc", &b, soc, 3.0),
        ];
        (Advisor::fit(&cells), a, b, mesh, soc)
    }

    #[test]
    fn nearest_neighbor_reuses_measured_ranking() {
        let (adv, a, b, mesh, soc) = toy_advisor();
        assert_eq!(adv.num_graphs(), 2);
        assert_eq!(adv.num_groups(), 1);
        let near_mesh = adv.advise(Algorithm::Bfs, Model::Cuda, &mesh);
        assert_eq!(near_mesh.method, Method::NearestNeighbor);
        assert_eq!(near_mesh.best(), a);
        let near_soc = adv.advise(Algorithm::Bfs, Model::Cuda, &soc);
        assert_eq!(near_soc.best(), b);
        assert_eq!(near_soc.neighbor.as_ref().unwrap().0, "soc");
    }

    #[test]
    fn unseen_group_falls_back_to_baseline() {
        let (adv, _, _, mesh, _) = toy_advisor();
        let advice = adv.advise(Algorithm::Tc, Model::Omp, &mesh);
        assert_eq!(advice.method, Method::Baseline);
        assert_eq!(
            advice.best(),
            StyleConfig::baseline(Algorithm::Tc, Model::Omp).name()
        );
    }

    #[test]
    fn empty_fit_is_baseline_everywhere() {
        let adv = Advisor::fit(&[]);
        let advice = adv.advise(Algorithm::Bfs, Model::Cuda, &fv(4.0, 4.0, 0.0, 0.0, 10.0));
        assert_eq!(advice.method, Method::Baseline);
        assert!(advice.neighbor.is_none());
        assert_eq!(adv.num_cells(), 0);
    }

    #[test]
    fn fit_is_deterministic() {
        let (a1, ..) = toy_advisor();
        let (a2, _, _, mesh, _) = toy_advisor();
        let r1 = a1.advise(Algorithm::Bfs, Model::Cuda, &mesh);
        let r2 = a2.advise(Algorithm::Bfs, Model::Cuda, &mesh);
        assert_eq!(r1.ranked, r2.ranked);
        assert_eq!(r1.method, r2.method);
    }

    #[test]
    fn ood_query_uses_rules_and_still_ranks_all_variants() {
        let (adv, a, b, ..) = toy_advisor();
        // A graph far outside the two training points in every dimension.
        let weird = FeatureVector([5e7, 5e9, 100.0, 4e6, 90.0, 40.0, 1.0, 2e6]);
        let advice = adv.advise(Algorithm::Bfs, Model::Cuda, &weird);
        assert_eq!(advice.method, Method::CorrelationRules);
        assert_eq!(advice.ranked.len(), 2);
        assert!(advice.ranked.contains(&a) && advice.ranked.contains(&b));
    }

    #[test]
    fn guidelines_come_from_the_fit() {
        let variants = enumerate::variants(Algorithm::Bfs, Model::Cuda);
        // Find two variants differing in granularity so the fit has contrast.
        let thread = variants
            .iter()
            .find(|c| c.dimension_label("granularity") == Some("thread"))
            .unwrap();
        let warp = variants
            .iter()
            .find(|c| c.dimension_label("granularity") == Some("warp"))
            .unwrap();
        let mesh = fv(4.0, 4.0, 0.0, 0.0, 120.0);
        let soc = fv(18.0, 600.0, 12.0, 0.1, 5.0);
        let cells = vec![
            cell(
                Algorithm::Bfs,
                Model::Cuda,
                "mesh",
                &thread.name(),
                mesh,
                2.0,
            ),
            cell(Algorithm::Bfs, Model::Cuda, "mesh", &warp.name(), mesh, 1.0),
            cell(Algorithm::Bfs, Model::Cuda, "soc", &thread.name(), soc, 1.0),
            cell(Algorithm::Bfs, Model::Cuda, "soc", &warp.name(), soc, 3.0),
        ];
        let adv = Advisor::fit(&cells);
        let rules = adv.guidelines(Algorithm::Bfs, Model::Cuda);
        assert!(!rules.is_empty());
        // Warp must correlate positively with some density-like property
        // (it won on the dense social graph).
        let warp_rule = rules
            .iter()
            .find(|r| r.dimension == "granularity" && r.option == "warp")
            .expect("warp rule fitted");
        assert!(warp_rule.correlation > 0.0);
        assert!(adv.guidelines(Algorithm::Pr, Model::Cpp).is_empty());
    }

    #[test]
    fn dist_features_are_shape_features() {
        let shape = [
            "avg_degree",
            "max_degree",
            "pct_deg_ge32",
            "pct_deg_ge512",
            "diameter_lb",
        ];
        assert_eq!(DIST_FEATURES.len(), shape.len());
        for (k, want) in DIST_FEATURES.into_iter().zip(shape) {
            assert_eq!(FEATURE_NAMES[k], want);
        }
    }

    #[test]
    fn pearson_and_median_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
        assert_eq!(median_sorted(&[1.0, 2.0, 4.0]), 2.0);
        assert_eq!(median_sorted(&[1.0, 3.0]), 2.0);
        assert!(median_sorted(&[]).is_nan());
    }
}
