//! The run matrix: every selected variant on every input on every target.
//!
//! [`RunPlan::run_cells`] executes the matrix under a two-level parallel
//! scheduler (see [`crate::schedule`]) with full fault tolerance (DESIGN.md
//! §7.3): every measurement cell runs inside a `catch_unwind` isolation
//! boundary, a watchdog thread enforces per-cell wall-clock budgets through
//! cooperative [`CancelToken`]s, completed cells stream into an append-only
//! checkpoint journal, and deterministic faults can be injected to exercise
//! all of it. Graph preparation and GPU-sim cells fan out across a host
//! thread pool, CPU wall-clock cells run exclusively afterwards, and every
//! cell lands in a slot indexed by the serial nesting order — so results
//! are bit-identical to a single-threaded run for any job count.
//!
//! [`RunPlan::run_with`] is the strict legacy entry point, now a thin layer
//! over `run_cells`: isolation only, and any non-`Ok` outcome re-raised as
//! a panic.

use crate::journal::{self, JournalEntry, JournalOutcome};
use crate::outcome::{CellFaultKind, CellOutcome, CellRecord, MatrixRun, Resilience};
use crate::schedule::{ProgressEvent, RunOptions, RunPhase};
use indigo_cancel::CancelToken;
use indigo_core::gpu::DeviceGraph;
use indigo_core::{
    run_gpu_supervised, run_variant_supervised, verify, GraphInput, Output, SimStats, Supervision,
    Target,
};
use indigo_exec::SYSTEM_PROFILES;
use indigo_gpusim::{rtx3090, titan_v, Device, FaultKind, FaultPlan};
use indigo_graph::gen::{suite_graph, Scale, SuiteGraph, SUITE_GRAPHS};
use indigo_styles::{enumerate, Algorithm, Model, StyleConfig};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One measured (variant, input, target) cell.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// The program variant.
    pub cfg: StyleConfig,
    /// Input graph label (`SuiteGraph::label`).
    pub graph: &'static str,
    /// Target label (`"TitanV-sim"`, `"sys1"`, …).
    pub target: String,
    /// Throughput in giga-edges per second (§4.5).
    pub geps: f64,
    /// Convergence iterations of the run.
    pub iterations: usize,
}

/// A measurement target: one simulated GPU or one CPU system profile.
#[derive(Clone, Debug)]
pub enum TargetSpec {
    /// Simulated GPU device.
    Gpu(Device),
    /// CPU profile: name + thread count.
    Cpu(&'static str, usize),
}

impl TargetSpec {
    /// Display label used in reports.
    pub fn label(&self) -> String {
        match self {
            TargetSpec::Gpu(d) => d.name.to_string(),
            TargetSpec::Cpu(name, _) => name.to_string(),
        }
    }

    /// The default targets for a model: both GPUs for CUDA, both system
    /// profiles for the CPU models (§4.3).
    pub fn defaults_for(model: Model) -> Vec<TargetSpec> {
        match model {
            Model::Cuda => vec![TargetSpec::Gpu(titan_v()), TargetSpec::Gpu(rtx3090())],
            _ => SYSTEM_PROFILES
                .iter()
                .map(|p| TargetSpec::Cpu(p.name, p.threads))
                .collect(),
        }
    }
}

/// What to run.
pub struct RunPlan {
    /// Variants to measure.
    pub variants: Vec<StyleConfig>,
    /// Inputs (paper Table 4 families).
    pub graphs: Vec<SuiteGraph>,
    /// Instance scale.
    pub scale: Scale,
    /// Wall-clock repetitions for CPU runs (median taken; the paper uses 9).
    pub reps: usize,
    /// Verify every output against the serial reference (§4.1). Slows large
    /// sweeps; recommended on.
    pub verify: bool,
}

/// One enumerated cell: its slot (serial nesting position) plus indices
/// into the plan's graph/variant lists.
struct Cell {
    slot: usize,
    graph: usize,
    variant: usize,
    target: TargetSpec,
}

impl RunPlan {
    /// Every variant of `algorithms` under `models`, all five inputs.
    pub fn for_algorithms(
        algorithms: &[Algorithm],
        models: &[Model],
        scale: Scale,
        reps: usize,
    ) -> RunPlan {
        let variants = models
            .iter()
            .flat_map(|&m| {
                algorithms
                    .iter()
                    .flat_map(move |&a| enumerate::variants(a, m))
            })
            .collect();
        RunPlan {
            variants,
            graphs: SUITE_GRAPHS.to_vec(),
            scale,
            reps,
            verify: true,
        }
    }

    /// Keeps only variants satisfying `pred`.
    pub fn filter(mut self, pred: impl Fn(&StyleConfig) -> bool) -> RunPlan {
        self.variants.retain(|c| pred(c));
        self
    }

    /// Restricts the input set.
    pub fn with_graphs(mut self, graphs: Vec<SuiteGraph>) -> RunPlan {
        self.graphs = graphs;
        self
    }

    /// Runs the full matrix single-threaded; `progress` is invoked with
    /// (done, total) *measurement cells*.
    pub fn run(&self, mut progress: impl FnMut(usize, usize)) -> Vec<Measurement> {
        self.run_with(&RunOptions::default(), |ev| {
            if let ProgressEvent::Cell { phase, done, total } = ev {
                if phase != RunPhase::Prepare {
                    progress(done, total);
                }
            }
        })
    }

    /// Runs the full matrix under the two-level scheduler, strictly: cells
    /// are isolated (one panicking cell cannot poison the worker pools) but
    /// any non-`Ok` outcome is re-raised as a panic once the matrix
    /// completes. The returned vector — order and values — is identical to
    /// `options.jobs == 1` for any job count.
    ///
    /// For structured outcomes, budgets, checkpointing, and fault injection
    /// use [`RunPlan::run_cells`].
    pub fn run_with(
        &self,
        options: &RunOptions,
        progress: impl FnMut(ProgressEvent),
    ) -> Vec<Measurement> {
        let run = self
            .run_cells(options, &Resilience::none(), progress)
            .expect("isolation-only runs have no journal to fail on");
        let mut out = Vec::with_capacity(run.records.len());
        for r in run.records {
            match r.outcome {
                CellOutcome::Ok(m) => out.push(m),
                CellOutcome::WrongAnswer { detail } => panic!(
                    "verification failed for {} on {}: {detail}",
                    r.variant, r.graph
                ),
                CellOutcome::Crashed { payload } => panic!(
                    "cell {} on {} ({}) crashed: {payload}",
                    r.variant, r.graph, r.target
                ),
                CellOutcome::TimedOut { reason, .. } => panic!(
                    "cell {} on {} ({}) timed out: {reason}",
                    r.variant, r.graph, r.target
                ),
            }
        }
        out
    }

    /// Runs the full matrix fault-tolerantly: every cell ends in exactly
    /// one [`CellOutcome`] and the run always produces a complete
    /// [`MatrixRun`] — crashes, timeouts, and wrong answers become
    /// structured records instead of aborting the sweep.
    ///
    /// Scheduling is identical to [`RunPlan::run_with`] (slot-indexed,
    /// bit-identical across job counts). On top of it, `res` enables:
    ///
    /// * **watchdog timeouts** — `res.cell_timeout` arms a monitor thread
    ///   that fires the cell's [`CancelToken`] past the budget; the cell
    ///   unwinds at its next cancellation point (kernel-launch, pool-chunk,
    ///   or repetition boundary) into a `TimedOut` record;
    /// * **cycle budgets** — `res.cycle_budget` caps *simulated* cycles of
    ///   GPU cells, catching non-converging kernels whose individual
    ///   launches are fast;
    /// * **checkpoint/resume** — `res.journal` streams completed cells to
    ///   an append-only JSONL journal; `res.resume` preloads it and replays
    ///   recorded cells instead of re-running them (bit-exact, see
    ///   [`crate::journal`]);
    /// * **fault injection** — `res.fault` deterministically panics,
    ///   stalls, or corrupts one cell, so all of the above is testable.
    ///
    /// `Err` is returned only for harness-level failures (unusable journal,
    /// invalid fault configuration) — never for failing cells.
    pub fn run_cells(
        &self,
        options: &RunOptions,
        res: &Resilience,
        mut progress: impl FnMut(ProgressEvent),
    ) -> Result<MatrixRun, String> {
        let jobs = options.jobs.max(1);

        // A zero-duration budget would arm a watchdog whose deadline has
        // already passed: every cell is cancelled at its first checkpoint
        // and the whole matrix reads as timed out. Nobody means that —
        // reject it loudly ("no timeout" is spelled by omitting the option).
        if res.cell_timeout.is_some_and(|d| d.is_zero()) {
            return Err(
                "cell timeout of 0s would cancel every cell at its first checkpoint; \
                 omit --cell-timeout to run without a watchdog"
                    .to_string(),
            );
        }

        if let Some(f) = res.fault {
            if f.kind == CellFaultKind::Stall && res.cell_timeout.is_none() {
                return Err(
                    "a stall fault needs a cell timeout: the watchdog is what recovers from a stall"
                        .to_string(),
                );
            }
            if f.kind == CellFaultKind::Corrupt && !self.verify {
                return Err(
                    "a corrupt fault needs verification enabled to be observable".to_string(),
                );
            }
        }

        // ---- journal: load what a previous (interrupted) run completed,
        // open the appender for what this run will complete
        let resumed: HashMap<u64, JournalEntry> = if res.resume {
            let path = res
                .journal
                .as_ref()
                .ok_or_else(|| "resume requested without a journal path".to_string())?;
            let (map, _skipped) = journal::load(path)
                .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
            map
        } else {
            if let Some(path) = &res.journal {
                let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                if len > 0 {
                    return Err(format!(
                        "journal {} already exists; resume it or remove it first",
                        path.display()
                    ));
                }
            }
            HashMap::new()
        };
        let writer = match &res.journal {
            Some(path) => Some(
                journal::Journal::append_to(path)
                    .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?,
            ),
            None => None,
        };
        let journal_err: Mutex<Option<String>> = Mutex::new(None);

        let watchdog = res.cell_timeout.map(|_| Watchdog::start());

        // ---- phase 1: prepare inputs (generate + upload), one per graph
        let started = Instant::now();
        let started_us = indigo_obs::now_micros();
        progress(ProgressEvent::PhaseStart {
            phase: RunPhase::Prepare,
            total: self.graphs.len(),
        });
        let inputs = run_indexed_parallel(
            self.graphs.len(),
            jobs,
            |g| {
                let input = GraphInput::new(suite_graph(self.graphs[g], self.scale));
                // upload once per graph, reused by every GPU variant
                let dg = DeviceGraph::upload(&input);
                (input, dg)
            },
            |done| {
                progress(ProgressEvent::Cell {
                    phase: RunPhase::Prepare,
                    done,
                    total: self.graphs.len(),
                });
            },
        );
        progress(ProgressEvent::PhaseEnd {
            phase: RunPhase::Prepare,
            total: self.graphs.len(),
            secs: started.elapsed().as_secs_f64(),
        });
        emit_phase_span(RunPhase::Prepare, started_us, self.graphs.len());

        // ---- enumerate cells in serial nesting order; the slot index is
        // the position a single-threaded run would emit the measurement at
        let (gpu_cells, cpu_cells, total_cells) = self.enumerate_cells();
        let slots: Vec<OnceLock<CellRecord>> = (0..total_cells).map(|_| OnceLock::new()).collect();

        let exec_cell = |cell: &Cell| -> CellRecord {
            let record = self.execute_cell(
                cell,
                &inputs[cell.graph],
                options,
                res,
                watchdog.as_ref(),
                &resumed,
            );
            if !record.resumed {
                if let Some(j) = &writer {
                    if let Err(e) = j.record(&record) {
                        let mut slot = journal_err.lock().unwrap_or_else(|p| p.into_inner());
                        if slot.is_none() {
                            *slot = Some(format!("journal write failed: {e}"));
                        }
                    }
                }
            }
            record
        };

        // ---- phase 2: GPU-sim cells, fanned across the job pool
        let started = Instant::now();
        let started_us = indigo_obs::now_micros();
        progress(ProgressEvent::PhaseStart {
            phase: RunPhase::GpuSim,
            total: gpu_cells.len(),
        });
        run_indexed_parallel(
            gpu_cells.len(),
            jobs,
            |i| {
                let cell = &gpu_cells[i];
                let filled = slots[cell.slot].set(exec_cell(cell));
                debug_assert!(filled.is_ok(), "slot {} measured twice", cell.slot);
            },
            |done| {
                progress(ProgressEvent::Cell {
                    phase: RunPhase::GpuSim,
                    done,
                    total: gpu_cells.len(),
                });
            },
        );
        progress(ProgressEvent::PhaseEnd {
            phase: RunPhase::GpuSim,
            total: gpu_cells.len(),
            secs: started.elapsed().as_secs_f64(),
        });
        emit_phase_span(RunPhase::GpuSim, started_us, gpu_cells.len());

        // ---- phase 3: CPU wall-clock cells, exclusive (no concurrent
        // measurement work that would skew the timings)
        let started = Instant::now();
        let started_us = indigo_obs::now_micros();
        progress(ProgressEvent::PhaseStart {
            phase: RunPhase::CpuWall,
            total: cpu_cells.len(),
        });
        for (done, cell) in cpu_cells.iter().enumerate() {
            let filled = slots[cell.slot].set(exec_cell(cell));
            debug_assert!(filled.is_ok(), "slot {} measured twice", cell.slot);
            progress(ProgressEvent::Cell {
                phase: RunPhase::CpuWall,
                done: done + 1,
                total: cpu_cells.len(),
            });
        }
        progress(ProgressEvent::PhaseEnd {
            phase: RunPhase::CpuWall,
            total: cpu_cells.len(),
            secs: started.elapsed().as_secs_f64(),
        });
        emit_phase_span(RunPhase::CpuWall, started_us, cpu_cells.len());

        let records: Vec<CellRecord> = slots
            .into_iter()
            .map(|s| s.into_inner().expect("every cell slot recorded"))
            .collect();
        if let Some(e) = journal_err.into_inner().unwrap_or_else(|p| p.into_inner()) {
            return Err(e);
        }
        Ok(MatrixRun { records })
    }

    /// Splits the matrix into GPU-sim and CPU wall-clock cells, assigning
    /// serial-nesting slot indices (graphs → variants → targets).
    fn enumerate_cells(&self) -> (Vec<Cell>, Vec<Cell>, usize) {
        let mut gpu_cells = Vec::new();
        let mut cpu_cells = Vec::new();
        let mut slot = 0usize;
        for graph in 0..self.graphs.len() {
            for (variant, cfg) in self.variants.iter().enumerate() {
                for target in TargetSpec::defaults_for(cfg.model) {
                    let is_gpu = matches!(target, TargetSpec::Gpu(_));
                    let cell = Cell {
                        slot,
                        graph,
                        variant,
                        target,
                    };
                    if is_gpu {
                        gpu_cells.push(cell);
                    } else {
                        cpu_cells.push(cell);
                    }
                    slot += 1;
                }
            }
        }
        (gpu_cells, cpu_cells, slot)
    }

    /// Runs (or replays) one cell to a [`CellRecord`]. This is the
    /// isolation boundary: whatever happens inside — panic, cancellation,
    /// verification failure — ends as a structured outcome, never an
    /// unwind into the scheduler.
    fn execute_cell(
        &self,
        cell: &Cell,
        prepared: &(GraphInput, DeviceGraph),
        options: &RunOptions,
        res: &Resilience,
        watchdog: Option<&Watchdog>,
        resumed: &HashMap<u64, JournalEntry>,
    ) -> CellRecord {
        let cfg = &self.variants[cell.variant];
        let which = self.graphs[cell.graph];
        let variant = cfg.name();
        let graph_label = which.label();
        let target_label = cell.target.label();
        let fp = journal::fingerprint(
            self.scale,
            self.reps,
            self.verify,
            &variant,
            graph_label,
            &target_label,
        );
        if let Some(entry) = resumed.get(&fp) {
            return replay_record(fp, cfg, graph_label, &target_label, &variant, entry);
        }

        let fault_here = res.fault.filter(|f| f.cell == cell.slot);
        // supervision is armed only when something could use it, so the
        // strict/legacy path stays token-free
        let needs_token =
            res.cell_timeout.is_some() || res.cycle_budget.is_some() || fault_here.is_some();
        let token = needs_token.then(CancelToken::new);
        let guard = match (watchdog, &token, res.cell_timeout) {
            (Some(w), Some(t), Some(budget)) => Some(w.watch(budget, t.clone())),
            _ => None,
        };
        let mut sup = Supervision {
            cancel: token,
            sim_cycle_budget: res.cycle_budget,
            fault: None,
        };
        let mut corrupt = false;
        let mut harness_fault = None;
        if let Some(f) = fault_here {
            let is_gpu = matches!(cell.target, TargetSpec::Gpu(_));
            match f.kind {
                // corruption is injected between the run and the verifier
                CellFaultKind::Corrupt => corrupt = true,
                // GPU faults strike inside the simulator, at a launch
                // boundary; CPU faults are injected right here at the
                // harness layer
                CellFaultKind::Panic if is_gpu => {
                    sup.fault = Some(FaultPlan {
                        kind: FaultKind::Panic,
                        at_launch: 0,
                    })
                }
                CellFaultKind::Stall if is_gpu => {
                    sup.fault = Some(FaultPlan {
                        kind: FaultKind::Stall,
                        at_launch: 0,
                    })
                }
                other => harness_fault = Some(other),
            }
        }

        let (input, dg) = prepared;
        let cell_started_us = if indigo_obs::enabled() {
            indigo_obs::now_micros()
        } else {
            0
        };
        let run = catch_unwind(AssertUnwindSafe(|| {
            match harness_fault {
                Some(CellFaultKind::Panic) => {
                    panic!("injected fault: panic at cell {}", cell.slot)
                }
                Some(CellFaultKind::Stall) => {
                    let t = sup.cancel.as_ref().expect("stall faults carry a token");
                    loop {
                        t.checkpoint();
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                _ => {}
            }
            self.run_cell(
                cfg,
                which,
                input,
                dg,
                &cell.target,
                options.sim_workers,
                &sup,
                corrupt,
            )
        }));
        let mut sim_stats = None;
        let outcome = match run {
            Ok(Ok((m, s))) => {
                sim_stats = s;
                CellOutcome::Ok(m)
            }
            Ok(Err(detail)) => CellOutcome::WrongAnswer { detail },
            Err(payload) => match indigo_cancel::as_cancelled(payload.as_ref()) {
                Some(c) => CellOutcome::TimedOut {
                    budget_secs: guard
                        .as_ref()
                        .filter(|g| g.wall_fired())
                        .and(res.cell_timeout)
                        .map(|d| d.as_secs_f64()),
                    reason: c.reason.clone(),
                },
                None => CellOutcome::Crashed {
                    payload: indigo_cancel::payload_text(payload.as_ref()),
                },
            },
        };
        drop(guard);
        if indigo_obs::enabled() {
            let dur_us = indigo_obs::now_micros().saturating_sub(cell_started_us);
            indigo_obs::Hist::CellMicros.record(dur_us);
            let mut ev = indigo_obs::TraceEvent::span(
                "cell",
                format!("{variant}|{graph_label}|{target_label}"),
                cell_started_us,
                dur_us.max(1),
            )
            .with_arg("outcome", outcome.label());
            if let CellOutcome::Ok(m) = &outcome {
                ev = ev
                    .with_arg("geps", format!("{:.6}", m.geps))
                    .with_arg("iterations", m.iterations.to_string());
            }
            if let Some(s) = sim_stats {
                ev = ev
                    .with_arg("sim_cycles", format!("{:.0}", s.cycles))
                    .with_arg("sim_launches", s.launches.to_string())
                    .with_arg("sim_accesses", s.accesses.to_string());
            }
            indigo_obs::emit(&ev);
        }
        CellRecord {
            fingerprint: fp,
            variant,
            graph: graph_label,
            target: target_label,
            outcome,
            resumed: false,
        }
    }

    /// Measures one cell. `Err` means the output diverged from the serial
    /// reference (the detail string); panics — including [`Cancelled`]
    /// unwinds from the supervision machinery — propagate to the caller's
    /// isolation boundary. The second element carries simulator statistics
    /// for GPU cells (telemetry only; `None` for CPU cells).
    ///
    /// [`Cancelled`]: indigo_cancel::Cancelled
    #[allow(clippy::too_many_arguments)]
    fn run_cell(
        &self,
        cfg: &StyleConfig,
        which: SuiteGraph,
        input: &GraphInput,
        dg: &DeviceGraph,
        target: &TargetSpec,
        sim_workers: usize,
        sup: &Supervision,
        corrupt: bool,
    ) -> Result<(Measurement, Option<SimStats>), String> {
        let (mut result, reps) = match target {
            TargetSpec::Gpu(device) => {
                // the simulator is deterministic: one run is exact
                (run_gpu_supervised(cfg, dg, *device, sim_workers, sup), 1)
            }
            TargetSpec::Cpu(_, threads) => (
                run_variant_supervised(cfg, input, &Target::cpu(*threads), sup),
                self.reps.max(1),
            ),
        };
        let mut secs = vec![result.secs];
        if reps > 1 {
            if let TargetSpec::Cpu(_, threads) = target {
                for _ in 1..reps {
                    // repetition boundaries are cancellation points
                    if let Some(token) = &sup.cancel {
                        token.checkpoint();
                    }
                    secs.push(run_variant_supervised(cfg, input, &Target::cpu(*threads), sup).secs);
                }
            }
        }
        secs.sort_by(f64::total_cmp);
        let median = interp_median(&secs);
        let sim_stats = result.sim;
        if corrupt {
            corrupt_output(&mut result.output);
        }
        if self.verify {
            verify::check(cfg, input, &result.output)?;
        }
        let geps = if median > 0.0 {
            input.num_edges() as f64 / median / 1e9
        } else {
            f64::INFINITY
        };
        Ok((
            Measurement {
                cfg: *cfg,
                graph: which.label(),
                target: target.label(),
                geps,
                iterations: result.iterations,
            },
            sim_stats,
        ))
    }
}

/// Median of an already-sorted, non-empty sample. Even-length samples
/// interpolate the two middles (matching `Summary::compute`'s `q(0.5)`);
/// taking the upper middle would report the *slower* of two repetitions
/// under the recorded `--reps 2` default, a systematic downward geps bias.
/// Note: this changes the geps bits for even-rep CPU cells, so journals
/// recorded before the fix replay with the old (biased) values — cell
/// fingerprints cover the plan, not the measured value.
pub(crate) fn interp_median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Emits one trace span covering a whole scheduler phase. `started_us` is
/// captured unconditionally at phase start (one clock read per phase); the
/// event itself only exists in telemetry builds with a sink installed.
fn emit_phase_span(phase: RunPhase, started_us: u64, cells: usize) {
    if indigo_obs::enabled() {
        let dur = indigo_obs::now_micros().saturating_sub(started_us);
        indigo_obs::emit(
            &indigo_obs::TraceEvent::span("phase", phase.label(), started_us, dur.max(1))
                .with_arg("cells", cells.to_string()),
        );
    }
}

/// Rebuilds a [`CellRecord`] from a journal entry instead of executing the
/// cell. `Ok` outcomes restore the exact `f64` bits, so downstream CSVs are
/// byte-identical to an uninterrupted run.
fn replay_record(
    fp: u64,
    cfg: &StyleConfig,
    graph: &'static str,
    target: &str,
    variant: &str,
    entry: &JournalEntry,
) -> CellRecord {
    let outcome = match &entry.outcome {
        JournalOutcome::Ok {
            geps_bits,
            iterations,
        } => CellOutcome::Ok(Measurement {
            cfg: *cfg,
            graph,
            target: target.to_string(),
            geps: f64::from_bits(*geps_bits),
            iterations: *iterations,
        }),
        JournalOutcome::Crashed { payload } => CellOutcome::Crashed {
            payload: payload.clone(),
        },
        JournalOutcome::TimedOut {
            budget_secs,
            reason,
        } => CellOutcome::TimedOut {
            budget_secs: *budget_secs,
            reason: reason.clone(),
        },
        JournalOutcome::WrongAnswer { detail } => CellOutcome::WrongAnswer {
            detail: detail.clone(),
        },
    };
    CellRecord {
        fingerprint: fp,
        variant: variant.to_string(),
        graph,
        target: target.to_string(),
        outcome,
        resumed: true,
    }
}

/// Deterministically corrupts one output value — the `Corrupt` fault's
/// payload, guaranteed to trip the §4.1 verifier.
fn corrupt_output(out: &mut Output) {
    match out {
        Output::Levels(v) | Output::Distances(v) | Output::Labels(v) => {
            if let Some(x) = v.first_mut() {
                *x = x.wrapping_add(1);
            }
        }
        Output::MisSet(v) => {
            if let Some(x) = v.first_mut() {
                *x = !*x;
            }
        }
        Output::Ranks(v) => {
            if let Some(x) = v.first_mut() {
                *x += 1.0;
            }
        }
        Output::Triangles(c) => *c = c.wrapping_add(1),
    }
}

// ---- watchdog ------------------------------------------------------------

struct WatchState {
    active: AtomicBool,
    fired: AtomicBool,
}

struct Watched {
    deadline: Instant,
    budget: Duration,
    token: CancelToken,
    state: Arc<WatchState>,
}

struct WatchInner {
    stop: bool,
    cells: Vec<Watched>,
}

struct WatchShared {
    inner: Mutex<WatchInner>,
    wake: std::sync::Condvar,
}

/// The watchdog: one monitor thread per matrix run that fires the
/// [`CancelToken`] of any registered cell past its wall-clock budget. The
/// cell itself unwinds at its next cooperative checkpoint; the watchdog
/// never kills threads.
///
/// The thread sleeps until the *earliest registered deadline* (woken by a
/// condvar on registration and shutdown) rather than polling: with generous
/// budgets it wakes a handful of times per run, so supervision costs no
/// measurable CPU even on a single-core host where a polling watchdog
/// steals cycles from the cell being measured.
struct Watchdog {
    shared: Arc<WatchShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    fn start() -> Watchdog {
        let shared = Arc::new(WatchShared {
            inner: Mutex::new(WatchInner {
                stop: false,
                cells: Vec::new(),
            }),
            wake: std::sync::Condvar::new(),
        });
        let inner = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("cell-watchdog".into())
            .spawn(move || {
                let mut guard = inner.inner.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if guard.stop {
                        return;
                    }
                    let now = Instant::now();
                    guard.cells.retain(|w| {
                        if !w.state.active.load(Ordering::Acquire) {
                            return false;
                        }
                        if now >= w.deadline {
                            w.token.fire(format!(
                                "wall-clock budget of {:.3}s exceeded",
                                w.budget.as_secs_f64()
                            ));
                            w.state.fired.store(true, Ordering::Release);
                            if indigo_obs::enabled() {
                                indigo_obs::Counter::WatchdogFired.incr();
                                indigo_obs::emit(
                                    &indigo_obs::TraceEvent::instant(
                                        "watchdog-fire",
                                        "cell budget exceeded",
                                        indigo_obs::now_micros(),
                                    )
                                    .with_arg(
                                        "budget_secs",
                                        format!("{:.3}", w.budget.as_secs_f64()),
                                    ),
                                );
                            }
                            return false;
                        }
                        true
                    });
                    // registration can only *extend* the earliest deadline
                    // (every budget starts from its own `now`), so sleeping
                    // to the current minimum never overshoots a new cell
                    let timeout = guard
                        .cells
                        .iter()
                        .map(|w| w.deadline.saturating_duration_since(now))
                        .min()
                        .unwrap_or(Duration::from_secs(3600));
                    guard = inner
                        .wake
                        .wait_timeout(guard, timeout)
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                }
            })
            .expect("spawn cell-watchdog thread");
        Watchdog {
            shared,
            handle: Some(handle),
        }
    }

    /// Registers one cell; the returned guard deregisters on drop and
    /// remembers whether the watchdog fired.
    fn watch(&self, budget: Duration, token: CancelToken) -> WatchGuard {
        if indigo_obs::enabled() {
            indigo_obs::Counter::WatchdogArmed.incr();
        }
        let state = Arc::new(WatchState {
            active: AtomicBool::new(true),
            fired: AtomicBool::new(false),
        });
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .cells
            .push(Watched {
                deadline: Instant::now() + budget,
                budget,
                token,
                state: Arc::clone(&state),
            });
        self.shared.wake.notify_one();
        WatchGuard { state }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .stop = true;
        self.shared.wake.notify_one();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

struct WatchGuard {
    state: Arc<WatchState>,
}

impl WatchGuard {
    /// Whether the watchdog's wall-clock deadline fired for this cell.
    fn wall_fired(&self) -> bool {
        self.state.fired.load(Ordering::Acquire)
    }
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        self.state.active.store(false, Ordering::Release);
    }
}

// ---- indexed parallel driver ---------------------------------------------

/// Runs `work(i)` for every `i in 0..n` on up to `jobs` threads (dynamic
/// work-stealing from a shared cursor) while the calling thread reports
/// completion counts through `tick`. With `jobs == 1` everything runs
/// inline on the caller — no threads, `tick` after every item.
///
/// A panic inside `work` does **not** poison the queue: the worker records
/// the payload against its index and keeps draining, so every other index
/// still completes. The earliest-index payload is re-raised on the calling
/// thread afterwards. (The resilient cell path wraps `work` in its own
/// isolation and never panics; this matters for graph preparation and any
/// external callers.)
///
/// Returns collected results ordered by index when `work` returns a value;
/// pass a `()`-returning closure for side-effect-only stages.
fn run_indexed_parallel<T, W>(n: usize, jobs: usize, work: W, mut tick: impl FnMut(usize)) -> Vec<T>
where
    T: Send + Sync,
    W: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    if jobs <= 1 || n == 1 {
        return (0..n)
            .map(|i| {
                let r = work(i);
                tick(i + 1);
                r
            })
            .collect();
    }
    let out: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();
    let panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());
    let cursor = AtomicUsize::new(0);
    let finished = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| work(i))) {
                    Ok(v) => {
                        let filled = out[i].set(v);
                        debug_assert!(filled.is_ok(), "index {i} computed twice");
                    }
                    Err(payload) => panics
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((i, payload)),
                }
                finished.fetch_add(1, Ordering::Release);
            });
        }
        // the caller's thread narrates progress while workers drain; every
        // index finishes (success or recorded panic), so this always
        // converges to n
        let mut last = 0usize;
        while last < n {
            let done = finished.load(Ordering::Acquire);
            if done > last {
                last = done;
                tick(done);
            } else {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
        }
    });
    let mut panics = panics.into_inner().unwrap_or_else(|e| e.into_inner());
    if !panics.is_empty() {
        panics.sort_by_key(|(i, _)| *i);
        std::panic::resume_unwind(panics.remove(0).1);
    }
    out.into_iter()
        .map(|c| c.into_inner().expect("every index computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::FaultSpec;

    #[test]
    fn tiny_matrix_runs_and_verifies() {
        let plan = RunPlan::for_algorithms(&[Algorithm::Bfs], &[Model::Cpp], Scale::Tiny, 1)
            .filter(|c| c.cpp_schedule == Some(indigo_styles::CppSchedule::Blocked))
            .with_graphs(vec![SuiteGraph::Grid2d]);
        let ms = plan.run(|_, _| {});
        // 20 blocked BFS Cpp variants × 1 graph × 2 system profiles
        assert_eq!(ms.len(), plan.variants.len() * 2);
        assert!(ms.iter().all(|m| m.geps.is_finite() && m.geps > 0.0));
    }

    #[test]
    fn gpu_cells_are_deterministic() {
        let plan = RunPlan::for_algorithms(&[Algorithm::Tc], &[Model::Cuda], Scale::Tiny, 1)
            .filter(|c| c.granularity == Some(indigo_styles::Granularity::Warp))
            .with_graphs(vec![SuiteGraph::CoPapers]);
        let a = plan.run(|_, _| {});
        let b = plan.run(|_, _| {});
        let ga: Vec<f64> = a.iter().map(|m| m.geps).collect();
        let gb: Vec<f64> = b.iter().map(|m| m.geps).collect();
        assert_eq!(ga, gb);
    }

    #[test]
    fn parallel_schedule_matches_serial_bitwise() {
        // mixed GPU + CPU slice; geps of GPU cells must be bit-identical
        // across job counts, and cell order must match the serial nesting
        let plan = RunPlan::for_algorithms(
            &[Algorithm::Tc, Algorithm::Pr],
            &[Model::Cuda],
            Scale::Tiny,
            1,
        )
        .filter(|c| c.granularity != Some(indigo_styles::Granularity::Block))
        .with_graphs(vec![SuiteGraph::Grid2d, SuiteGraph::Rmat]);
        let serial = plan.run_with(&RunOptions::default(), |_| {});
        for jobs in [2usize, 4] {
            let par = plan.run_with(
                &RunOptions::default().with_jobs(jobs).with_sim_workers(2),
                |_| {},
            );
            assert_eq!(serial.len(), par.len(), "jobs={jobs}");
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.cfg.name(), b.cfg.name(), "jobs={jobs}");
                assert_eq!(a.graph, b.graph);
                assert_eq!(a.target, b.target);
                assert_eq!(
                    a.geps.to_bits(),
                    b.geps.to_bits(),
                    "{} on {}",
                    a.cfg.name(),
                    a.graph
                );
                assert_eq!(a.iterations, b.iterations);
            }
        }
    }

    #[test]
    fn progress_events_are_phase_structured() {
        let plan = RunPlan::for_algorithms(&[Algorithm::Tc], &[Model::Cuda], Scale::Tiny, 1)
            .filter(|c| {
                c.granularity == Some(indigo_styles::Granularity::Thread)
                    && c.atomic == Some(indigo_styles::AtomicKind::Atomic)
            })
            .with_graphs(vec![SuiteGraph::Grid2d]);
        let mut events = Vec::new();
        let ms = plan.run_with(&RunOptions::default().with_jobs(2), |ev| events.push(ev));
        // three phases, each bracketed by start/end
        for phase in [RunPhase::Prepare, RunPhase::GpuSim, RunPhase::CpuWall] {
            assert!(events
                .iter()
                .any(|e| matches!(e, ProgressEvent::PhaseStart { phase: p, .. } if *p == phase)));
            assert!(events
                .iter()
                .any(|e| matches!(e, ProgressEvent::PhaseEnd { phase: p, .. } if *p == phase)));
        }
        // the GPU phase accounts for every cell (all-CUDA plan)
        let gpu_total = events
            .iter()
            .find_map(|e| match e {
                ProgressEvent::PhaseStart {
                    phase: RunPhase::GpuSim,
                    total,
                } => Some(*total),
                _ => None,
            })
            .unwrap();
        assert_eq!(gpu_total, ms.len());
    }

    #[test]
    fn even_rep_median_interpolates_not_upper_middle() {
        // the recorded default is `--reps 2`: the median must be the
        // midpoint of the two repetitions, not the slower one
        let fast = 0.010;
        let slow = 0.030;
        let m = interp_median(&[fast, slow]);
        assert!((m - 0.020).abs() < 1e-15, "got {m}, want midpoint");
        assert!(m < slow, "even-rep median must not report the slower rep");
        // odd lengths keep the exact middle element
        assert_eq!(interp_median(&[1.0, 2.0, 9.0]), 2.0);
        assert_eq!(interp_median(&[1.0]), 1.0);
        // four reps: average of the two middles
        assert!((interp_median(&[1.0, 2.0, 4.0, 8.0]) - 3.0).abs() < 1e-15);
    }

    #[test]
    fn target_labels_distinct() {
        let cuda = TargetSpec::defaults_for(Model::Cuda);
        let cpu = TargetSpec::defaults_for(Model::Omp);
        assert_eq!(cuda.len(), 2);
        assert_eq!(cpu.len(), 2);
        assert_ne!(cuda[0].label(), cuda[1].label());
        assert_ne!(cpu[0].label(), cpu[1].label());
    }

    #[test]
    fn run_indexed_parallel_drains_after_worker_panic() {
        // a panicking item must neither deadlock the queue nor prevent the
        // remaining indices from completing; its payload re-raises on the
        // caller afterwards
        let done = AtomicUsize::new(0);
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_indexed_parallel(
                16,
                4,
                |i| {
                    if i == 3 {
                        panic!("boom at {i}");
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                },
                |_| {},
            )
        }))
        .unwrap_err();
        assert_eq!(indigo_cancel::payload_text(err.as_ref()), "boom at 3");
        assert_eq!(done.load(Ordering::Relaxed), 15, "all other items ran");
    }

    fn tc_plan() -> RunPlan {
        RunPlan::for_algorithms(&[Algorithm::Tc], &[Model::Cuda], Scale::Tiny, 1)
            .filter(|c| c.granularity == Some(indigo_styles::Granularity::Thread))
            .with_graphs(vec![SuiteGraph::Grid2d])
    }

    #[test]
    fn injected_gpu_panic_isolates_a_single_cell() {
        let plan = tc_plan();
        let opts = RunOptions::default().with_jobs(2);
        let clean = plan.run_cells(&opts, &Resilience::none(), |_| {}).unwrap();
        let faulty = plan
            .run_cells(
                &opts,
                &Resilience::none().with_fault(FaultSpec::parse("panic@1").unwrap()),
                |_| {},
            )
            .unwrap();
        assert_eq!(clean.records.len(), faulty.records.len());
        for (i, (c, f)) in clean.records.iter().zip(&faulty.records).enumerate() {
            if i == 1 {
                match &f.outcome {
                    CellOutcome::Crashed { payload } => {
                        assert!(payload.contains("injected fault"), "{payload}")
                    }
                    other => panic!("expected crash, got {other:?}"),
                }
            } else {
                // every other cell is bit-identical to the fault-free run
                let (a, b) = (
                    c.outcome.measurement().unwrap(),
                    f.outcome.measurement().unwrap(),
                );
                assert_eq!(a.geps.to_bits(), b.geps.to_bits(), "cell {i}");
            }
        }
        let summary = faulty.summary();
        assert_eq!(summary.crashed, 1);
        assert_eq!(summary.exit_code(), 2);
        assert_eq!(clean.summary().exit_code(), 0);
    }

    #[test]
    fn injected_cpu_panic_is_harness_injected() {
        let plan = RunPlan::for_algorithms(&[Algorithm::Bfs], &[Model::Cpp], Scale::Tiny, 1)
            .filter(|c| c.cpp_schedule == Some(indigo_styles::CppSchedule::Blocked))
            .with_graphs(vec![SuiteGraph::Grid2d]);
        let run = plan
            .run_cells(
                &RunOptions::default(),
                &Resilience::none().with_fault(FaultSpec::parse("panic@0").unwrap()),
                |_| {},
            )
            .unwrap();
        match &run.records[0].outcome {
            CellOutcome::Crashed { payload } => {
                assert_eq!(payload, "injected fault: panic at cell 0")
            }
            other => panic!("expected crash, got {other:?}"),
        }
        assert_eq!(run.summary().ok, run.records.len() - 1);
    }

    #[test]
    fn injected_stall_is_recovered_by_the_watchdog() {
        let plan = tc_plan();
        let res = Resilience::none()
            .with_cell_timeout(Duration::from_millis(100))
            .with_fault(FaultSpec::parse("stall@0").unwrap());
        let run = plan
            .run_cells(&RunOptions::default(), &res, |_| {})
            .unwrap();
        match &run.records[0].outcome {
            CellOutcome::TimedOut {
                budget_secs,
                reason,
            } => {
                assert_eq!(*budget_secs, Some(0.1));
                assert!(reason.contains("wall-clock budget"), "{reason}");
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(run.summary().timed_out, 1);
        assert_eq!(run.summary().ok, run.records.len() - 1);
    }

    #[test]
    fn zero_cell_timeout_is_rejected_up_front() {
        // an already-expired watchdog would cancel every cell at its first
        // checkpoint — run_cells must refuse rather than time everything out
        let err = tc_plan()
            .run_cells(
                &RunOptions::default(),
                &Resilience::none().with_cell_timeout(Duration::ZERO),
                |_| {},
            )
            .unwrap_err();
        assert!(err.contains("0s"), "{err}");
        assert!(err.contains("omit"), "{err}");
    }

    #[test]
    fn stall_fault_without_watchdog_is_rejected() {
        let err = tc_plan()
            .run_cells(
                &RunOptions::default(),
                &Resilience::none().with_fault(FaultSpec::parse("stall@0").unwrap()),
                |_| {},
            )
            .unwrap_err();
        assert!(err.contains("stall fault"), "{err}");
    }

    #[test]
    fn injected_corruption_is_quarantined_by_verification() {
        let plan = tc_plan();
        let run = plan
            .run_cells(
                &RunOptions::default(),
                &Resilience::none().with_fault(FaultSpec::parse("corrupt@2").unwrap()),
                |_| {},
            )
            .unwrap();
        assert!(matches!(
            run.records[2].outcome,
            CellOutcome::WrongAnswer { .. }
        ));
        assert_eq!(run.summary().wrong_answer, 1);
    }

    #[test]
    fn cycle_budget_times_out_gpu_cells_without_a_watchdog() {
        // an absurdly small simulated-cycle budget cancels every GPU cell —
        // PageRank launches one kernel per iteration, so the budget check
        // (which runs at launch boundaries) actually triggers
        let plan = RunPlan::for_algorithms(&[Algorithm::Pr], &[Model::Cuda], Scale::Tiny, 1)
            .filter(|c| c.granularity == Some(indigo_styles::Granularity::Thread))
            .with_graphs(vec![SuiteGraph::Grid2d]);
        let run = plan
            .run_cells(
                &RunOptions::default(),
                &Resilience::none().with_cycle_budget(1.0),
                |_| {},
            )
            .unwrap();
        assert_eq!(run.summary().timed_out, run.records.len());
        for r in &run.records {
            match &r.outcome {
                CellOutcome::TimedOut {
                    budget_secs,
                    reason,
                } => {
                    assert_eq!(*budget_secs, None, "no wall-clock budget was set");
                    assert!(reason.contains("simulated-cycle budget"), "{reason}");
                }
                other => panic!("expected timeout, got {other:?}"),
            }
        }
    }

    #[test]
    fn journal_resume_replays_bit_identical_outcomes() {
        let dir = std::env::temp_dir().join(format!("indigo-matrix-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal");
        std::fs::remove_file(&path).ok();

        let plan = tc_plan();
        let opts = RunOptions::default();
        let full = plan
            .run_cells(&opts, &Resilience::none().with_journal(&path), |_| {})
            .unwrap();
        assert_eq!(full.summary().resumed, 0);

        // emulate a killed run: keep only the first 2 journal lines
        let text = std::fs::read_to_string(&path).unwrap();
        let head: Vec<&str> = text.lines().take(2).collect();
        std::fs::write(&path, format!("{}\n", head.join("\n"))).unwrap();

        let resumed = plan
            .run_cells(&opts, &Resilience::none().resuming(&path), |_| {})
            .unwrap();
        assert_eq!(resumed.summary().resumed, 2);
        assert_eq!(full.records.len(), resumed.records.len());
        for (a, b) in full.records.iter().zip(&resumed.records) {
            assert_eq!(a.fingerprint, b.fingerprint);
            let (ma, mb) = (
                a.outcome.measurement().unwrap(),
                b.outcome.measurement().unwrap(),
            );
            assert_eq!(ma.geps.to_bits(), mb.geps.to_bits());
            assert_eq!(ma.iterations, mb.iterations);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fresh_journal_refuses_to_overwrite_an_existing_one() {
        let dir =
            std::env::temp_dir().join(format!("indigo-matrix-overwrite-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal");
        std::fs::write(&path, "{}\n").unwrap();
        let err = tc_plan()
            .run_cells(
                &RunOptions::default(),
                &Resilience::none().with_journal(&path),
                |_| {},
            )
            .unwrap_err();
        assert!(err.contains("already exists"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
