//! The run matrix: every selected variant on every input on every target.

use indigo_core::{run_variant, verify, GraphInput, Target};
use indigo_exec::SYSTEM_PROFILES;
use indigo_graph::gen::{suite_graph, Scale, SuiteGraph, SUITE_GRAPHS};
use indigo_gpusim::{rtx3090, titan_v, Device};
use indigo_styles::{enumerate, Algorithm, Model, StyleConfig};

/// One measured (variant, input, target) cell.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// The program variant.
    pub cfg: StyleConfig,
    /// Input graph label (`SuiteGraph::label`).
    pub graph: &'static str,
    /// Target label (`"TitanV-sim"`, `"sys1"`, …).
    pub target: String,
    /// Throughput in giga-edges per second (§4.5).
    pub geps: f64,
    /// Convergence iterations of the run.
    pub iterations: usize,
}

/// A measurement target: one simulated GPU or one CPU system profile.
#[derive(Clone, Debug)]
pub enum TargetSpec {
    /// Simulated GPU device.
    Gpu(Device),
    /// CPU profile: name + thread count.
    Cpu(&'static str, usize),
}

impl TargetSpec {
    /// Display label used in reports.
    pub fn label(&self) -> String {
        match self {
            TargetSpec::Gpu(d) => d.name.to_string(),
            TargetSpec::Cpu(name, _) => name.to_string(),
        }
    }

    /// The default targets for a model: both GPUs for CUDA, both system
    /// profiles for the CPU models (§4.3).
    pub fn defaults_for(model: Model) -> Vec<TargetSpec> {
        match model {
            Model::Cuda => vec![TargetSpec::Gpu(titan_v()), TargetSpec::Gpu(rtx3090())],
            _ => SYSTEM_PROFILES
                .iter()
                .map(|p| TargetSpec::Cpu(p.name, p.threads))
                .collect(),
        }
    }
}

/// What to run.
pub struct RunPlan {
    /// Variants to measure.
    pub variants: Vec<StyleConfig>,
    /// Inputs (paper Table 4 families).
    pub graphs: Vec<SuiteGraph>,
    /// Instance scale.
    pub scale: Scale,
    /// Wall-clock repetitions for CPU runs (median taken; the paper uses 9).
    pub reps: usize,
    /// Verify every output against the serial reference (§4.1). Slows large
    /// sweeps; recommended on.
    pub verify: bool,
}

impl RunPlan {
    /// Every variant of `algorithms` under `models`, all five inputs.
    pub fn for_algorithms(
        algorithms: &[Algorithm],
        models: &[Model],
        scale: Scale,
        reps: usize,
    ) -> RunPlan {
        let variants = models
            .iter()
            .flat_map(|&m| algorithms.iter().flat_map(move |&a| enumerate::variants(a, m)))
            .collect();
        RunPlan { variants, graphs: SUITE_GRAPHS.to_vec(), scale, reps, verify: true }
    }

    /// Keeps only variants satisfying `pred`.
    pub fn filter(mut self, pred: impl Fn(&StyleConfig) -> bool) -> RunPlan {
        self.variants.retain(|c| pred(c));
        self
    }

    /// Restricts the input set.
    pub fn with_graphs(mut self, graphs: Vec<SuiteGraph>) -> RunPlan {
        self.graphs = graphs;
        self
    }

    /// Runs the full matrix on every default target of each variant's
    /// model; `progress` is invoked with (done, total) after each cell.
    pub fn run(&self, mut progress: impl FnMut(usize, usize)) -> Vec<Measurement> {
        let mut out = Vec::new();
        let total = self.graphs.len();
        let mut done = 0usize;
        for &which in &self.graphs {
            let input = GraphInput::new(suite_graph(which, self.scale));
            // upload once per (graph), reused by every GPU variant
            let dg = indigo_core::gpu::DeviceGraph::upload(&input);
            for cfg in &self.variants {
                let targets = TargetSpec::defaults_for(cfg.model);
                for target in targets {
                    let m = self.run_cell(cfg, which, &input, &dg, &target);
                    out.push(m);
                }
            }
            done += 1;
            progress(done, total);
        }
        out
    }

    fn run_cell(
        &self,
        cfg: &StyleConfig,
        which: SuiteGraph,
        input: &GraphInput,
        dg: &indigo_core::gpu::DeviceGraph,
        target: &TargetSpec,
    ) -> Measurement {
        let (result, reps) = match target {
            TargetSpec::Gpu(device) => {
                // the simulator is deterministic: one run is exact
                (indigo_core::run_gpu(cfg, dg, *device), 1)
            }
            TargetSpec::Cpu(_, threads) => {
                (run_variant(cfg, input, &Target::cpu(*threads)), self.reps.max(1))
            }
        };
        let mut secs = vec![result.secs];
        if reps > 1 {
            if let TargetSpec::Cpu(_, threads) = target {
                for _ in 1..reps {
                    secs.push(run_variant(cfg, input, &Target::cpu(*threads)).secs);
                }
            }
        }
        secs.sort_by(f64::total_cmp);
        let median = secs[secs.len() / 2];
        if self.verify {
            if let Err(e) = verify::check(cfg, input, &result.output) {
                panic!("verification failed for {} on {}: {e}", cfg.name(), input.name());
            }
        }
        let geps = if median > 0.0 {
            input.num_edges() as f64 / median / 1e9
        } else {
            f64::INFINITY
        };
        Measurement {
            cfg: *cfg,
            graph: which.label(),
            target: target.label(),
            geps,
            iterations: result.iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_matrix_runs_and_verifies() {
        let plan = RunPlan::for_algorithms(&[Algorithm::Bfs], &[Model::Cpp], Scale::Tiny, 1)
            .filter(|c| c.cpp_schedule == Some(indigo_styles::CppSchedule::Blocked))
            .with_graphs(vec![SuiteGraph::Grid2d]);
        let ms = plan.run(|_, _| {});
        // 20 blocked BFS Cpp variants × 1 graph × 2 system profiles
        assert_eq!(ms.len(), plan.variants.len() * 2);
        assert!(ms.iter().all(|m| m.geps.is_finite() && m.geps > 0.0));
    }

    #[test]
    fn gpu_cells_are_deterministic() {
        let plan = RunPlan::for_algorithms(&[Algorithm::Tc], &[Model::Cuda], Scale::Tiny, 1)
            .filter(|c| c.granularity == Some(indigo_styles::Granularity::Warp))
            .with_graphs(vec![SuiteGraph::CoPapers]);
        let a = plan.run(|_, _| {});
        let b = plan.run(|_, _| {});
        let ga: Vec<f64> = a.iter().map(|m| m.geps).collect();
        let gb: Vec<f64> = b.iter().map(|m| m.geps).collect();
        assert_eq!(ga, gb);
    }

    #[test]
    fn target_labels_distinct() {
        let cuda = TargetSpec::defaults_for(Model::Cuda);
        let cpu = TargetSpec::defaults_for(Model::Omp);
        assert_eq!(cuda.len(), 2);
        assert_eq!(cpu.len(), 2);
        assert_ne!(cuda[0].label(), cuda[1].label());
        assert_ne!(cpu[0].label(), cpu[1].label());
    }
}
