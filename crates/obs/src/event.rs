//! Trace events: monotonic-timestamped spans and instants, with a flat
//! JSONL wire form.
//!
//! One event is one line: `{"v": 1, "ts": …, "dur": …, "kind": "…",
//! "name": "…", "tid": …, "args": {…}}` — `ts`/`dur` in microseconds since
//! the process epoch, `dur == 0` for instants, and `args` a flat object of
//! string values. The format is hand-rolled (the workspace is dependency-
//! free) and mirrors the checkpoint journal's discipline: the writer emits
//! whole lines, the reader ([`load_trace`]) skips malformed lines, so a
//! torn tail from a killed run costs exactly one event.
//!
//! Everything here is compiled regardless of the `telemetry` feature:
//! `indigo-exp trace` / `indigo-exp profile` must read traces recorded by
//! other builds.

use std::path::Path;
use std::sync::OnceLock;
use std::time::Instant;

/// Wire-format version stamped into every line.
pub const TRACE_VERSION: u32 = 1;

/// Event kinds the validator accepts.
pub const KNOWN_KINDS: &[&str] = &[
    "run-start",
    "run-end",
    "phase",
    "cell",
    "watchdog-arm",
    "watchdog-fire",
    "counters",
    "request",
];

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the process-wide monotonic epoch (set on first call).
#[must_use]
pub fn now_micros() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// One trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Start timestamp, µs since the process epoch.
    pub ts_us: u64,
    /// Span duration in µs; 0 for instants.
    pub dur_us: u64,
    /// Event kind (see [`KNOWN_KINDS`]).
    pub kind: String,
    /// Human-readable name (phase label, cell identity, …).
    pub name: String,
    /// Logical thread/worker id of the emitter.
    pub tid: u64,
    /// Flat key → string-value payload.
    pub args: Vec<(String, String)>,
}

impl TraceEvent {
    /// A span covering `[ts_us, ts_us + dur_us)`.
    #[must_use]
    pub fn span(kind: &str, name: impl Into<String>, ts_us: u64, dur_us: u64) -> TraceEvent {
        TraceEvent {
            ts_us,
            dur_us,
            kind: kind.to_string(),
            name: name.into(),
            tid: 0,
            args: Vec::new(),
        }
    }

    /// An instant at `ts_us`.
    #[must_use]
    pub fn instant(kind: &str, name: impl Into<String>, ts_us: u64) -> TraceEvent {
        TraceEvent::span(kind, name, ts_us, 0)
    }

    /// Attaches one arg (builder style).
    #[must_use]
    pub fn with_arg(mut self, key: &str, value: impl Into<String>) -> TraceEvent {
        self.args.push((key.to_string(), value.into()));
        self
    }

    /// Sets the logical thread id (builder style).
    #[must_use]
    pub fn with_tid(mut self, tid: u64) -> TraceEvent {
        self.tid = tid;
        self
    }

    /// Looks up an arg by key.
    #[must_use]
    pub fn arg(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// An arg parsed as `f64`.
    #[must_use]
    pub fn arg_f64(&self, key: &str) -> Option<f64> {
        self.arg(key).and_then(|v| v.parse().ok())
    }

    /// Encodes the event as one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut s = format!(
            "{{\"v\": {TRACE_VERSION}, \"ts\": {}, \"dur\": {}, \"kind\": {}, \"name\": {}, \"tid\": {}, \"args\": {{",
            self.ts_us,
            self.dur_us,
            json_str(&self.kind),
            json_str(&self.name),
            self.tid,
        );
        for (i, (k, v)) in self.args.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_str(k));
            s.push_str(": ");
            s.push_str(&json_str(v));
        }
        s.push_str("}}");
        s
    }

    /// Parses one JSONL line back into an event.
    pub fn parse(line: &str) -> Result<TraceEvent, String> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return Err("not a JSON object".to_string());
        }
        let v = parse_u64_field(line, "v")?;
        if v != u64::from(TRACE_VERSION) {
            return Err(format!("unsupported trace version {v}"));
        }
        let ts_us = parse_u64_field(line, "ts")?;
        let dur_us = parse_u64_field(line, "dur")?;
        let tid = parse_u64_field(line, "tid")?;
        let kind = parse_str_field(line, "kind")?;
        let name = parse_str_field(line, "name")?;
        let args = parse_args_object(line)?;
        Ok(TraceEvent {
            ts_us,
            dur_us,
            kind,
            name,
            tid,
            args,
        })
    }
}

/// Parses **and validates** one line: version, known kind, non-empty name.
/// This is the schema check used by tests and `indigo-exp trace --check`.
pub fn validate_line(line: &str) -> Result<TraceEvent, String> {
    let ev = TraceEvent::parse(line)?;
    if !KNOWN_KINDS.contains(&ev.kind.as_str()) {
        return Err(format!("unknown event kind `{}`", ev.kind));
    }
    if ev.name.is_empty() {
        return Err("empty event name".to_string());
    }
    Ok(ev)
}

/// Loads a trace file, skipping malformed lines (torn tails, partial
/// writes). Returns the events plus the number of lines skipped.
pub fn load_trace(path: &Path) -> std::io::Result<(Vec<TraceEvent>, usize)> {
    let text = std::fs::read_to_string(path)?;
    let mut events = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match validate_line(line) {
            Ok(ev) => events.push(ev),
            Err(_) => skipped += 1,
        }
    }
    Ok((events, skipped))
}

// ---- minimal flat-JSON machinery ----------------------------------------

/// Escapes `s` as a JSON string literal (quotes included).
#[must_use]
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finds `"key": ` at top level and returns the byte offset just past it.
fn find_field(line: &str, key: &str) -> Option<usize> {
    let tag = format!("\"{key}\": ");
    // keys never appear inside the args object with these reserved names,
    // and values are escaped, so a plain find on the quoted tag is exact
    line.find(&tag).map(|at| at + tag.len())
}

fn parse_u64_field(line: &str, key: &str) -> Result<u64, String> {
    let at = find_field(line, key).ok_or_else(|| format!("missing field `{key}`"))?;
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .map_err(|_| format!("field `{key}` is not a number"))
}

/// Reads a JSON string literal starting at `rest[0] == '"'`; returns the
/// unescaped value and the byte length consumed (including both quotes).
fn read_string(rest: &str) -> Result<(String, usize), String> {
    let mut chars = rest.char_indices();
    match chars.next() {
        Some((_, '"')) => {}
        _ => return Err("expected string".to_string()),
    }
    let mut out = String::new();
    let mut escaped = false;
    for (i, c) in chars {
        if escaped {
            match c {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => out.push('\u{fffd}'), // \uXXXX: only written for C0 controls; lossy is fine
                other => out.push(other),
            }
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '"' => return Ok((out, i + 1)),
            other => out.push(other),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_str_field(line: &str, key: &str) -> Result<String, String> {
    let at = find_field(line, key).ok_or_else(|| format!("missing field `{key}`"))?;
    read_string(&line[at..]).map(|(s, _)| s)
}

/// Parses the trailing `"args": { "k": "v", … }` object.
fn parse_args_object(line: &str) -> Result<Vec<(String, String)>, String> {
    let at = find_field(line, "args").ok_or_else(|| "missing field `args`".to_string())?;
    let mut rest = line[at..]
        .strip_prefix('{')
        .ok_or_else(|| "args is not an object".to_string())?
        .trim_start();
    let mut args = Vec::new();
    loop {
        if let Some(after) = rest.strip_prefix('}') {
            let _ = after;
            return Ok(args);
        }
        let (key, used) = read_string(rest)?;
        rest = rest[used..]
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| "missing `:` in args".to_string())?
            .trim_start();
        let (value, used) = read_string(rest)?;
        args.push((key, value));
        rest = rest[used..].trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_args_and_escapes() {
        let ev = TraceEvent::span("cell", "bfs|grid\"2d\"", 120, 45)
            .with_tid(3)
            .with_arg("variant", "bfs-cuda\\topo")
            .with_arg("outcome", "ok")
            .with_arg("note", "line1\nline2");
        let line = ev.to_json_line();
        let back = TraceEvent::parse(&line).unwrap();
        assert_eq!(back, ev);
        assert_eq!(back.arg("outcome"), Some("ok"));
        assert_eq!(back.arg("missing"), None);
    }

    #[test]
    fn validate_rejects_garbage_and_unknown_kinds() {
        assert!(validate_line("not json").is_err());
        assert!(validate_line("{\"v\": 1}").is_err());
        let bad_kind = TraceEvent::instant("martian", "x", 1).to_json_line();
        assert!(validate_line(&bad_kind).unwrap_err().contains("unknown"));
        let ok = TraceEvent::instant("phase", "gpu-sim", 1).to_json_line();
        assert!(validate_line(&ok).is_ok());
        // a torn prefix of a valid line must be rejected, not mis-parsed
        let torn = &ok[..ok.len() / 2];
        assert!(validate_line(torn).is_err());
    }

    #[test]
    fn load_trace_skips_torn_tail() {
        let dir = std::env::temp_dir().join(format!("indigo-obs-ev-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let a = TraceEvent::instant("run-start", "smoke", 1).to_json_line();
        let b = TraceEvent::span("phase", "gpu-sim", 2, 100).to_json_line();
        let torn = &b[..b.len() - 7]; // killed mid-write
        std::fs::write(&path, format!("{a}\n{b}\n{torn}")).unwrap();
        let (events, skipped) = load_trace(&path).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(skipped, 1);
        assert_eq!(events[0].kind, "run-start");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn monotonic_clock_is_monotonic() {
        let a = now_micros();
        let b = now_micros();
        assert!(b >= a);
    }

    #[test]
    fn arg_f64_parses_numbers() {
        let ev = TraceEvent::instant("cell", "x", 0).with_arg("geps", "1.25");
        assert_eq!(ev.arg_f64("geps"), Some(1.25));
        assert_eq!(ev.arg_f64("absent"), None);
    }
}
