//! The GPU relaxation engine: BFS, SSSP, and CC in every applicable style
//! (the CUDA analog of [`crate::cpu::relax`]; see that module for the
//! shared problem table).
//!
//! On top of the CPU engine's axes this adds the GPU-only styles: thread/
//! warp/block granularity (§2.8 — lanes stride the neighbor loop of
//! vertex-based codes), persistent threads (§2.7), and Atomic vs CudaAtomic
//! (§2.9 — the distance array, the worklist size counter, and the stamp
//! array are all declared with the configured flavor, so the RW style's
//! `load()`/`store()` pay the seq_cst penalty too, as §5.1 describes).

use super::{assign_of, atomic_kind_of, persistent_of, DeviceGraph};
use crate::cpu::relax::RelaxKind;
use indigo_gpusim::{Assign, BufKind, GpuBuf, LaneCtx, Sim};
use indigo_graph::{NodeId, INF};
use indigo_styles::{Determinism, Direction, Drive, Flow, StyleConfig, Update, WorklistDup};

/// A device-side worklist: item array, atomic size counter, overflow flag.
struct GpuWorklist {
    items: GpuBuf,
    size: GpuBuf,
    overflow: GpuBuf,
}

impl GpuWorklist {
    fn new(capacity: usize, kind: BufKind) -> Self {
        GpuWorklist {
            items: GpuBuf::new(capacity, 0),
            size: GpuBuf::new(1, 0).with_kind(kind),
            overflow: GpuBuf::new(1, 0),
        }
    }

    /// Device-side push (Listing 3a): `atomicAdd` on the size, then store.
    fn push(&self, ctx: &mut LaneCtx, v: u32) {
        let idx = ctx.atomic_add(&self.size, 0, 1) as usize;
        if idx < self.items.len() {
            ctx.st(&self.items, idx, v);
        } else {
            ctx.st(&self.overflow, 0, 1);
        }
    }

    /// Host-side push used to seed the initial list.
    fn host_push(&self, v: u32) {
        let idx = self.size.host_read(0) as usize;
        assert!(idx < self.items.len(), "initial worklist overflow");
        self.items.host_write(idx, v);
        self.size.host_write(0, idx as u32 + 1);
    }

    fn len(&self) -> usize {
        (self.size.host_read(0) as usize).min(self.items.len())
    }

    fn clear(&self) {
        self.size.host_write(0, 0);
        self.overflow.host_write(0, 0);
    }

    fn overflowed(&self) -> bool {
        self.overflow.host_read(0) != 0
    }
}

/// Runs the relaxation variant `cfg` on the simulator; returns converged
/// values and the iteration count. `sim`'s clock keeps ticking across the
/// internal launches, so the caller reads the run time from it.
pub fn run(
    kind: RelaxKind,
    cfg: &StyleConfig,
    dg: &DeviceGraph,
    sim: &mut Sim,
    source: NodeId,
) -> (Vec<u32>, usize) {
    let n = dg.n;
    let akind = atomic_kind_of(cfg);
    let assign = assign_of(cfg);
    let persistent = persistent_of(cfg);
    let det = cfg.determinism == Determinism::Deterministic;
    let rmw = cfg.update == Update::ReadModifyWrite;

    let dist = GpuBuf::new(n, INF).with_kind(akind);
    let dist_read = det.then(|| GpuBuf::new(n, INF).with_kind(akind));
    init(kind, &dist, source);
    if let Some(r) = &dist_read {
        init(kind, r, source);
    }
    let changed = GpuBuf::new(1, 0);

    // one edge relaxation with both endpoint loads (edge-based codes and
    // pull-style vertex loops); returns the updated endpoint on success
    let relax = |ctx: &mut LaneCtx, v: u32, u: u32, w: u32| -> Option<u32> {
        let (from, to) = match cfg.flow.expect("relaxation variants have a flow") {
            Flow::Push => (v, u),
            Flow::Pull => (u, v),
        };
        let rd = dist_read.as_ref().unwrap_or(&dist);
        let val = ctx.ld(rd, from as usize);
        if val == INF {
            return None;
        }
        let nd = val.saturating_add(contrib(kind, w));
        gpu_min_update(ctx, &dist, to as usize, nd, rmw).then_some(to)
    };

    let iterations = match cfg.drive {
        Drive::TopologyDriven => {
            let mut iters = 0usize;
            loop {
                iters += 1;
                changed.host_write(0, 0);
                match cfg.direction {
                    Direction::VertexBased if cfg.flow == Some(Flow::Push) => {
                        // push loads its source value once and skips
                        // untouched vertices entirely (Listing 4a) — the
                        // work asymmetry §5.4 credits push for
                        let rd = dist_read.as_ref().unwrap_or(&dist);
                        sim.launch(n, assign, persistent, |ctx, vi| {
                            push_vertex(ctx, dg, rd, &dist, kind, rmw, vi as u32, &mut |ctx, _| {
                                ctx.st(&changed, 0, 1);
                            });
                        });
                    }
                    Direction::VertexBased => {
                        sim.launch(n, assign, persistent, |ctx, vi| {
                            vertex_scan(ctx, dg, vi as u32, |ctx, v, u, w| {
                                if relax(ctx, v, u, w).is_some() {
                                    ctx.st(&changed, 0, 1);
                                }
                            });
                        });
                    }
                    Direction::EdgeBased => {
                        sim.launch(dg.m, assign, persistent, |ctx, e| {
                            let v = ctx.ld(&dg.src, e);
                            let u = ctx.ld(&dg.dst, e);
                            let w = ctx.ld(&dg.coo_wt, e);
                            if relax(ctx, v, u, w).is_some() {
                                ctx.st(&changed, 0, 1);
                            }
                        });
                    }
                }
                if let Some(r) = &dist_read {
                    copy_buf(sim, r, &dist);
                }
                if changed.host_read(0) == 0 {
                    return (dist.to_vec(), iters);
                }
            }
        }
        Drive::DataDriven(dup) => data_loop(
            kind,
            cfg,
            dg,
            sim,
            akind,
            assign,
            persistent,
            dup,
            source,
            &relax,
            dist_read.as_ref(),
            &dist,
            rmw,
        ),
    };
    (dist.to_vec(), iterations)
}

fn contrib(kind: RelaxKind, w: u32) -> u32 {
    match kind {
        RelaxKind::Bfs => 1,
        RelaxKind::Sssp => w,
        RelaxKind::Cc => 0,
    }
}

fn init(kind: RelaxKind, buf: &GpuBuf, source: NodeId) {
    match kind {
        RelaxKind::Bfs | RelaxKind::Sssp => {
            if !buf.is_empty() {
                buf.host_write(source as usize, 0);
            }
        }
        RelaxKind::Cc => {
            for v in 0..buf.len() {
                buf.host_write(v, v as u32);
            }
        }
    }
}

/// Conditional monotonic update of `dist[to]` in the configured §2.5 style;
/// returns whether the stored value decreased.
///
/// This is the GPU kernels' semantic *relaxation update* site: under the
/// `sanitize` feature each call reports which style it actually used, and
/// the mutation-test switch can force an RMW-labeled variant onto the
/// unsynchronized split so the sanitizer's label check must trip.
#[inline]
fn gpu_min_update(ctx: &mut LaneCtx, dist: &GpuBuf, to: usize, nd: u32, rmw: bool) -> bool {
    let rmw = rmw && !indigo_exec::sanitize::mutate_drop_atomic();
    indigo_exec::sanitize::note_update(rmw);
    if rmw {
        ctx.atomic_min(dist, to, nd) > nd
    } else {
        // read-write style (Listing 5a); exact under the simulator's
        // sequential lane execution
        let old = ctx.ld(dist, to);
        if nd < old {
            ctx.st(dist, to, nd);
            true
        } else {
            false
        }
    }
}

/// Vertex-based push relaxation of `v` (Listing 4a shape): one source load,
/// early exit on `INF`, lane-strided neighbor loop; `on_success(ctx, u)`
/// fires for every lowered neighbor.
#[allow(clippy::too_many_arguments)]
fn push_vertex(
    ctx: &mut LaneCtx,
    dg: &DeviceGraph,
    rd: &GpuBuf,
    dist: &GpuBuf,
    kind: RelaxKind,
    rmw: bool,
    v: u32,
    on_success: &mut dyn FnMut(&mut LaneCtx, u32),
) {
    let val = ctx.ld(rd, v as usize);
    if val == INF {
        return;
    }
    let beg = ctx.ld(&dg.row, v as usize) as usize;
    let end = ctx.ld(&dg.row, v as usize + 1) as usize;
    let lanes = ctx.lane_count();
    let mut i = beg + ctx.lane();
    while i < end {
        let u = ctx.ld(&dg.nbr, i);
        let w = ctx.ld(&dg.wt, i);
        let nd = val.saturating_add(contrib(kind, w));
        if gpu_min_update(ctx, dist, u as usize, nd, rmw) {
            on_success(ctx, u);
        }
        i += lanes;
    }
}

/// Lane-strided neighbor scan of vertex `v` (Listings 8a–8c): every lane
/// loads the row bounds, then walks `beg + lane, beg + lane + lanes, …`.
fn vertex_scan(
    ctx: &mut LaneCtx,
    dg: &DeviceGraph,
    v: u32,
    mut body: impl FnMut(&mut LaneCtx, u32, u32, u32),
) {
    let beg = ctx.ld(&dg.row, v as usize) as usize;
    let end = ctx.ld(&dg.row, v as usize + 1) as usize;
    let mut i = beg + ctx.lane();
    let lanes = ctx.lane_count();
    while i < end {
        let u = ctx.ld(&dg.nbr, i);
        let w = ctx.ld(&dg.wt, i);
        body(ctx, v, u, w);
        i += lanes;
    }
}

/// Copies `src` into `dst_read` with a thread-granularity kernel — the §2.6
/// deterministic style's extra launch.
fn copy_buf(sim: &mut Sim, dst_read: &GpuBuf, src: &GpuBuf) {
    sim.launch(src.len(), Assign::ThreadPerItem, false, |ctx, i| {
        let v = ctx.ld(src, i);
        ctx.st(dst_read, i, v);
    });
}

#[allow(clippy::too_many_arguments)]
fn data_loop(
    kind: RelaxKind,
    cfg: &StyleConfig,
    dg: &DeviceGraph,
    sim: &mut Sim,
    akind: BufKind,
    assign: Assign,
    persistent: bool,
    dup: WorklistDup,
    source: NodeId,
    relax: &(impl Fn(&mut LaneCtx, u32, u32, u32) -> Option<u32> + Sync + ?Sized),
    dist_read: Option<&GpuBuf>,
    dist: &GpuBuf,
    rmw: bool,
) -> usize {
    let edge_items = cfg.direction == Direction::EdgeBased;
    let nodup = dup == WorklistDup::NoDuplicates;
    let items_total = if edge_items { dg.m } else { dg.n };
    if dg.n == 0 {
        return 0;
    }
    let capacity = if nodup {
        items_total + 1
    } else {
        2 * items_total + 64
    };
    let current = GpuWorklist::new(capacity, akind);
    let next = GpuWorklist::new(capacity, akind);
    let stamps = nodup.then(|| GpuBuf::new(items_total, 0).with_kind(akind));

    match kind {
        RelaxKind::Bfs | RelaxKind::Sssp => {
            if edge_items {
                for e in dg_row_range(dg, source) {
                    current.host_push(e as u32);
                }
            } else {
                current.host_push(source);
            }
        }
        RelaxKind::Cc => {
            for item in 0..items_total {
                current.host_push(item as u32);
            }
        }
    }

    let mut lists = [&current, &next];
    let mut iterations = 0u32;
    let mut full_sweep = false;
    loop {
        iterations += 1;
        let iter = iterations;
        let (cur, nxt) = (lists[0], lists[1]);
        let changed = GpuBuf::new(1, 0);

        // device-side reactivation after a successful relax of `to`
        let activate = |ctx: &mut LaneCtx, to: u32| {
            ctx.st(&changed, 0, 1);
            if edge_items {
                for e in dg_row_range(dg, to) {
                    push_item(ctx, nxt, stamps.as_ref(), e as u32, iter);
                }
            } else {
                push_item(ctx, nxt, stamps.as_ref(), to, iter);
            }
        };

        let process = |ctx: &mut LaneCtx, item: u32| {
            if edge_items {
                let e = item as usize;
                let v = ctx.ld(&dg.src, e);
                let u = ctx.ld(&dg.dst, e);
                let w = ctx.ld(&dg.coo_wt, e);
                if let Some(to) = relax(ctx, v, u, w) {
                    activate(ctx, to);
                }
            } else {
                // data-driven is push-only: hoisted source load (4a)
                let rd = dist_read.unwrap_or(dist);
                push_vertex(ctx, dg, rd, dist, kind, rmw, item, &mut |ctx, u| {
                    activate(ctx, u)
                });
            }
        };

        if full_sweep {
            sim.launch(items_total, assign, persistent, |ctx, i| {
                process(ctx, i as u32)
            });
        } else {
            sim.launch(cur.len(), assign, persistent, |ctx, idx| {
                let item = ctx.ld(&cur.items, idx);
                process(ctx, item);
            });
        }

        let overflowed = nxt.overflowed();
        if let Some(rd) = dist_read {
            copy_buf(sim, rd, dist);
        }
        if full_sweep && changed.host_read(0) == 0 {
            return iterations as usize;
        }
        full_sweep = overflowed;
        cur.clear();
        lists.swap(0, 1);
        if !full_sweep && lists[0].len() == 0 {
            return iterations as usize;
        }
    }
}

/// Host-side CSR row range of vertex `v` (for seeding / reactivating edges).
fn dg_row_range(dg: &DeviceGraph, v: u32) -> std::ops::Range<usize> {
    let beg = dg.row.host_read(v as usize) as usize;
    let end = dg.row.host_read(v as usize + 1) as usize;
    beg..end
}

/// Device-side worklist insertion, with the Listing 3b stamp check when the
/// no-duplicates style is selected.
fn push_item(ctx: &mut LaneCtx, wl: &GpuWorklist, stamps: Option<&GpuBuf>, item: u32, iter: u32) {
    if let Some(st) = stamps {
        if ctx.atomic_max(st, item as usize, iter) == iter {
            return;
        }
    }
    wl.push(ctx, item);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{serial, GraphInput, SOURCE};
    use indigo_gpusim::titan_v;
    use indigo_graph::gen::{self, toy};
    use indigo_styles::{enumerate, Algorithm, Model};

    fn reference(kind: RelaxKind, input: &GraphInput) -> Vec<u32> {
        match kind {
            RelaxKind::Bfs => serial::bfs(&input.csr, SOURCE),
            RelaxKind::Sssp => serial::sssp(&input.csr, SOURCE),
            RelaxKind::Cc => serial::cc(&input.csr),
        }
    }

    /// Every CUDA variant of BFS/SSSP/CC must match the serial oracle.
    /// 160 variants × 3 algorithms × 3 graphs — the GPU analog of the CPU
    /// engine's exhaustive test.
    #[test]
    fn all_gpu_variants_match_reference() {
        let graphs = vec![
            toy::weighted_diamond(),
            gen::gnp(40, 0.1, 5),
            gen::grid2d(5, 4),
        ];
        for g in graphs {
            let input = GraphInput::new(g);
            let dg = DeviceGraph::upload(&input);
            for (kind, algo) in [
                (RelaxKind::Bfs, Algorithm::Bfs),
                (RelaxKind::Sssp, Algorithm::Sssp),
                (RelaxKind::Cc, Algorithm::Cc),
            ] {
                let expect = reference(kind, &input);
                for cfg in enumerate::variants(algo, Model::Cuda) {
                    let mut sim = Sim::new(titan_v());
                    let (got, iters) = run(kind, &cfg, &dg, &mut sim, SOURCE);
                    assert!(iters >= 1);
                    assert!(sim.elapsed_cycles() > 0.0);
                    assert_eq!(got, expect, "{} on {}", cfg.name(), input.name());
                }
            }
        }
    }

    #[test]
    fn simulated_time_is_deterministic_per_variant() {
        let input = GraphInput::new(gen::gnp(60, 0.08, 3));
        let dg = DeviceGraph::upload(&input);
        let cfg = StyleConfig::baseline(Algorithm::Sssp, Model::Cuda);
        let time = |dg: &DeviceGraph| {
            let mut sim = Sim::new(titan_v());
            run(RelaxKind::Sssp, &cfg, dg, &mut sim, SOURCE);
            sim.elapsed_cycles()
        };
        assert_eq!(time(&dg), time(&dg));
    }

    #[test]
    fn empty_graph_terminates() {
        let input = GraphInput::new(indigo_graph::Csr::from_raw(vec![0], vec![], vec![], "e"));
        let dg = DeviceGraph::upload(&input);
        let cfg = StyleConfig::baseline(Algorithm::Cc, Model::Cuda);
        let mut sim = Sim::new(titan_v());
        let (vals, _) = run(RelaxKind::Cc, &cfg, &dg, &mut sim, 0);
        assert!(vals.is_empty());
    }
}
