//! Single-flight coalescing and continuous batching (DESIGN.md §7.9).
//!
//! Two cooperating layers sit between the request engine and
//! `RunPlan::run_cells`:
//!
//! * **Single-flight ([`Flights`]).** In-flight work is keyed by the PR 2
//!   cell fingerprint. The first request to need a missing cell *claims*
//!   it (and becomes responsible for executing it); every later request
//!   for the same cell *joins* the existing flight and just waits. One
//!   execution fans its outcome out to all waiters. Claims are guarded:
//!   if the claiming executor dies or drops the claim, the flight resolves
//!   as transient so waiters re-claim instead of hanging, and a resolved
//!   flight leaves the registry so the cell can be retried.
//! * **Batching ([`Batcher`]).** Claimed work is submitted to a batch
//!   former that drains its queue up to a size/window bound (closing the
//!   window early when the queue is empty — batching must never add
//!   latency to an idle server) and coalesces compatible submissions into
//!   one `run_cells` matrix invocation, amortizing graph generation, pool
//!   leases, and journal appends. Submissions merge only when the merged
//!   plan computes *exactly* the union of the requested cells: same
//!   (scale, reps) and either the same graph (variant union) or identical
//!   variant sets (graph union). Fault-injected submissions never merge —
//!   an injected fault strikes the plan's first cell, so merging would
//!   fault someone else's work.
//!
//! Coalescing is semantically invisible: answers are assembled per-request
//! from the fingerprint cache (which is keep-first, so a cell's bits never
//! change once served), a waiter whose deadline expires answers 504
//! without cancelling the shared run, and a quarantined `WrongAnswer`
//! poisons exactly the waiters of that cell.

use crate::admission::Admission;
use crate::cache::ResultCache;
use crate::stats::{ServeCounter, Stats};
use indigo_graph::gen::{Scale, SuiteGraph};
use indigo_harness::{CellOutcome, CellRecord, FaultSpec, Resilience, RunOptions, RunPlan};
use indigo_obs::now_micros;
use indigo_styles::StyleConfig;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How one flight ended, fanned out to every waiter.
#[derive(Clone, Debug)]
pub enum FlightResult {
    /// The cell completed and is in the result cache.
    Done,
    /// The cell crashed or timed out; waiters may re-claim and retry.
    Transient {
        /// Variant name (for failure bodies).
        variant: String,
        /// Target label.
        target: String,
        /// `"crashed"` or `"timed-out"`.
        outcome: &'static str,
        /// Free-form failure detail.
        detail: String,
    },
    /// The cell failed verification: permanent, poisons all waiters.
    Poisoned {
        /// Variant name.
        variant: String,
        /// Target label.
        target: String,
        /// Verification failure detail.
        detail: String,
    },
}

/// One in-flight cell execution; waiters block on the condvar.
///
/// A flight also carries its request-scoped attribution (DESIGN.md §7.10):
/// the claiming request's sequence number (so coalesced waiters can report
/// `served_by`), when it was claimed, and when its merged plan actually
/// started executing — the gap between the two is the batch-wait stage.
pub struct Flight {
    state: Mutex<Option<FlightResult>>,
    done: Condvar,
    /// Sequence number of the request that claimed this flight.
    owner: u64,
    /// `now_micros()` at claim time.
    claimed_at_us: u64,
    /// `now_micros()` when the merged plan began executing (0 = not yet).
    exec_start_us: AtomicU64,
}

impl Flight {
    fn new(owner: u64) -> Flight {
        Flight {
            state: Mutex::new(None),
            done: Condvar::new(),
            owner,
            claimed_at_us: now_micros(),
            exec_start_us: AtomicU64::new(0),
        }
    }

    /// Sequence number of the request that claimed this flight.
    pub fn owner(&self) -> u64 {
        self.owner
    }

    /// Stamps the moment the merged plan started executing (first stamp
    /// wins — a flight runs exactly once).
    pub fn mark_exec_start(&self, at_us: u64) {
        let _ = self.exec_start_us.compare_exchange(
            0,
            at_us.max(1),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Claim → plan execution start, µs (0 while still parked in the
    /// former, or if the flight resolved without executing).
    pub fn batch_wait_us(&self) -> u64 {
        let start = self.exec_start_us.load(Ordering::Relaxed);
        if start == 0 {
            0
        } else {
            start.saturating_sub(self.claimed_at_us)
        }
    }

    fn resolve(&self, result: FlightResult) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.is_none() {
            *st = Some(result);
        }
        drop(st);
        self.done.notify_all();
    }

    /// The result so far, without blocking.
    pub fn peek(&self) -> Option<FlightResult> {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Blocks until the flight resolves or `deadline` passes. `None` means
    /// the flight is still running — the waiter's deadline expired, which
    /// does NOT cancel the execution; it keeps running for other waiters
    /// and lands in the cache.
    pub fn wait_until(&self, deadline: Instant) -> Option<FlightResult> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = st.as_ref() {
                return Some(r.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .done
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }
}

/// A cell a request wants to claim: fingerprint plus labels for failure
/// bodies.
#[derive(Clone, Copy, Debug)]
pub struct CellClaim<'a> {
    /// Cell fingerprint (the single-flight key).
    pub fp: u64,
    /// Variant name.
    pub variant: &'a str,
    /// Target label.
    pub target: &'a str,
}

/// Responsibility for one claimed flight. Dropping a guard without
/// resolving it resolves the flight as transient — an executor that dies
/// can delay waiters, never strand them.
pub struct ClaimGuard {
    fp: u64,
    variant: String,
    target: String,
    flight: Arc<Flight>,
    registry: Arc<Flights>,
    resolved: bool,
}

impl ClaimGuard {
    /// The claimed cell's fingerprint.
    pub fn fp(&self) -> u64 {
        self.fp
    }

    /// A waitable handle on the claimed flight.
    pub fn flight(&self) -> Arc<Flight> {
        Arc::clone(&self.flight)
    }

    /// Resolves the flight and retires it from the registry.
    pub fn resolve(mut self, result: FlightResult) {
        self.resolved = true;
        self.registry.finish(self.fp, &self.flight, result);
    }
}

impl Drop for ClaimGuard {
    fn drop(&mut self) {
        if !self.resolved {
            self.registry.finish(
                self.fp,
                &self.flight,
                FlightResult::Transient {
                    variant: self.variant.clone(),
                    target: self.target.clone(),
                    outcome: "crashed",
                    detail: "executor dropped the claim".into(),
                },
            );
        }
    }
}

/// The single-flight registry: fingerprint → live flight.
#[derive(Default)]
pub struct Flights {
    map: Mutex<HashMap<u64, Arc<Flight>>>,
}

impl Flights {
    /// An empty registry.
    pub fn new() -> Flights {
        Flights::default()
    }

    /// For each wanted cell: create-and-claim a new flight, or join the
    /// one already in the air. Returns the claims this caller now owns and
    /// the flights it merely joined. Atomic across the whole set, so two
    /// racing requests split the cells rather than double-claiming.
    /// `owner` is the claiming request's sequence number, reported as
    /// `served_by` to every later joiner.
    pub fn claim_or_join(
        this: &Arc<Flights>,
        cells: &[CellClaim<'_>],
        owner: u64,
    ) -> (Vec<ClaimGuard>, Vec<Arc<Flight>>) {
        let mut claimed = Vec::new();
        let mut joined = Vec::new();
        let mut map = this.map.lock().unwrap_or_else(|e| e.into_inner());
        for c in cells {
            match map.get(&c.fp) {
                Some(f) => joined.push(Arc::clone(f)),
                None => {
                    let flight = Arc::new(Flight::new(owner));
                    map.insert(c.fp, Arc::clone(&flight));
                    claimed.push(ClaimGuard {
                        fp: c.fp,
                        variant: c.variant.to_string(),
                        target: c.target.to_string(),
                        flight,
                        registry: Arc::clone(this),
                        resolved: false,
                    });
                }
            }
        }
        indigo_obs::Gauge::ServeLiveFlights.set(map.len() as i64);
        (claimed, joined)
    }

    /// The flights already in the air for `fps`, without claiming anything
    /// (used by a request that is out of execution attempts but can still
    /// free-ride on someone else's run).
    pub fn join_only(&self, fps: &[u64]) -> Vec<Arc<Flight>> {
        let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        fps.iter().filter_map(|fp| map.get(fp).cloned()).collect()
    }

    /// Flights currently in the air.
    pub fn in_flight(&self) -> usize {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    fn finish(&self, fp: u64, flight: &Arc<Flight>, result: FlightResult) {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        // remove only our own entry — a later claimer may already have
        // registered a fresh flight under the same fingerprint
        if map.get(&fp).is_some_and(|f| Arc::ptr_eq(f, flight)) {
            map.remove(&fp);
            indigo_obs::Gauge::ServeLiveFlights.set(map.len() as i64);
        }
        drop(map);
        flight.resolve(result);
    }
}

/// One attempt's worth of claimed work, handed to the batch former.
pub struct Submission {
    /// Input graph (all claimed cells of a submission share it).
    pub graph: SuiteGraph,
    /// Instance scale.
    pub scale: Scale,
    /// Repetitions per cell.
    pub reps: usize,
    /// Style variants to replan.
    pub variants: Vec<StyleConfig>,
    /// Per-cell watchdog budget for this attempt.
    pub budget: Duration,
    /// Injected fault (chaos mode). A faulted submission never merges.
    pub fault: Option<FaultSpec>,
    /// The flights this submission must resolve.
    pub claims: Vec<ClaimGuard>,
}

/// Batch former tuning.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Most submissions merged into one `run_cells` invocation.
    pub max_batch: usize,
    /// Longest the former waits for more submissions once it has one.
    pub window: Duration,
}

/// The continuous batch former: one thread that drains submissions,
/// groups them into mergeable plans, executes each plan, and resolves the
/// claimed flights.
pub struct Batcher {
    queue: Arc<Admission<Submission>>,
    runner: Mutex<Option<JoinHandle<()>>>,
}

impl Batcher {
    /// Spawns the former thread.
    pub fn spawn(
        cfg: BatchConfig,
        cache: Arc<ResultCache>,
        stats: Arc<Stats>,
        jobs: usize,
    ) -> std::io::Result<Batcher> {
        // capacity bounds claimers parked on the batcher, not clients —
        // a full queue makes the claimer run inline instead
        let queue = Arc::new(Admission::new_unrecorded(64));
        let runner = {
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name("serve-batcher".into())
                .spawn(move || former_loop(&cfg, &queue, &cache, &stats, jobs))?
        };
        Ok(Batcher {
            queue,
            runner: Mutex::new(Some(runner)),
        })
    }

    /// Hands a submission to the former. `Err` returns it (queue full or
    /// closed) — the caller should execute inline.
    pub fn submit(&self, sub: Submission) -> Result<(), Submission> {
        self.queue.try_push(sub).map_err(|e| match e {
            crate::admission::PushError::Full(s) => s,
            crate::admission::PushError::Closed(s) => s,
        })
    }

    /// Stops the former once the queue drains and joins it.
    pub fn shutdown(&self) {
        self.queue.close();
        if let Some(h) = self.runner.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = h.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn former_loop(
    cfg: &BatchConfig,
    queue: &Admission<Submission>,
    cache: &ResultCache,
    stats: &Stats,
    jobs: usize,
) {
    while let Some(first) = queue.pop() {
        let mut batch = vec![first];
        let window_closes = Instant::now() + cfg.window;
        while batch.len() < cfg.max_batch.max(1) {
            // adaptive window: while more submissions are queued keep
            // draining (up to the window), but an empty queue closes the
            // window early — an idle server pays zero batching latency
            match queue.try_pop() {
                Some(s) => batch.push(s),
                None => {
                    let now = Instant::now();
                    if now >= window_closes || queue.depth() == 0 {
                        break;
                    }
                    match queue.pop_timeout(window_closes - now) {
                        Some(s) => batch.push(s),
                        None => break,
                    }
                }
            }
        }
        execute_batch(batch, cache, stats, jobs);
    }
}

/// A mergeable plan-in-progress: the union of compatible submissions.
struct Group {
    scale: Scale,
    reps: usize,
    graphs: Vec<SuiteGraph>,
    variants: Vec<StyleConfig>,
    budget: Duration,
    fault: Option<FaultSpec>,
    claims: Vec<ClaimGuard>,
}

impl Group {
    fn of(sub: Submission) -> Group {
        Group {
            scale: sub.scale,
            reps: sub.reps,
            graphs: vec![sub.graph],
            variants: sub.variants,
            budget: sub.budget,
            fault: sub.fault,
            claims: sub.claims,
        }
    }

    fn variant_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.variants.iter().map(|v| v.name()).collect();
        names.sort();
        names
    }

    fn absorb(&mut self, sub: Submission) {
        for v in sub.variants {
            let name = v.name();
            if !self.variants.iter().any(|x| x.name() == name) {
                self.variants.push(v);
            }
        }
        // the shared watchdog runs at the *longest* member budget: a
        // short-deadline waiter 504s on its own clock rather than timing
        // out everyone else's cells
        self.budget = self.budget.max(sub.budget);
        self.claims.extend(sub.claims);
    }
}

/// Groups a drained batch into mergeable plans and executes each one.
fn execute_batch(batch: Vec<Submission>, cache: &ResultCache, stats: &Stats, jobs: usize) {
    let mut solo: Vec<Group> = Vec::new();
    let mut groups: Vec<Group> = Vec::new();
    for sub in batch {
        if sub.fault.is_some() {
            solo.push(Group::of(sub));
            continue;
        }
        match groups
            .iter_mut()
            .find(|g| g.scale == sub.scale && g.reps == sub.reps && g.graphs == [sub.graph])
        {
            Some(g) => g.absorb(sub),
            None => groups.push(Group::of(sub)),
        }
    }
    // second pass: groups with identical variant sets merge across graphs
    // (still exactly the union of requested cells — no cross-product bloat)
    let mut merged: Vec<Group> = Vec::new();
    for g in groups {
        match merged.iter_mut().find(|m| {
            m.scale == g.scale && m.reps == g.reps && m.variant_names() == g.variant_names()
        }) {
            Some(m) => {
                for graph in g.graphs {
                    if !m.graphs.contains(&graph) {
                        m.graphs.push(graph);
                    }
                }
                m.budget = m.budget.max(g.budget);
                m.claims.extend(g.claims);
            }
            None => merged.push(g),
        }
    }
    for g in merged.into_iter().chain(solo) {
        let coalesced = g.claims.len();
        let plan = RunPlan {
            variants: g.variants,
            graphs: g.graphs,
            scale: g.scale,
            reps: g.reps,
            verify: true,
        };
        run_claims(cache, stats, jobs, plan, g.budget, g.fault, g.claims);
        stats.bump(ServeCounter::Batches);
        stats.add(ServeCounter::BatchedCells, coalesced as u64);
    }
}

/// Executes one plan and resolves its claims — shared by the batcher and
/// by the engine's inline (batching-off) path, so both produce identical
/// cache contents and flight outcomes.
pub fn run_claims(
    cache: &ResultCache,
    stats: &Stats,
    jobs: usize,
    plan: RunPlan,
    budget: Duration,
    fault: Option<FaultSpec>,
    claims: Vec<ClaimGuard>,
) {
    let mut res = Resilience::none().with_cell_timeout(budget);
    if let Some(f) = fault {
        res = res.with_fault(f);
    }
    // the plan is now actually running: stamp every claimed flight so the
    // claim → execution gap is attributable as batch wait
    let exec_start = now_micros();
    for guard in &claims {
        let flight = guard.flight();
        flight.mark_exec_start(exec_start);
        indigo_obs::Hist::ServeBatchWaitMicros.record(flight.batch_wait_us());
    }
    let opts = RunOptions::default().with_jobs(jobs.max(1));
    let outcome = catch_unwind(AssertUnwindSafe(|| plan.run_cells(&opts, &res, |_| {})));
    let run = match outcome {
        Ok(Ok(run)) => run,
        Ok(Err(e)) => {
            let detail = format!("harness error: {e}");
            return resolve_all_transient(claims, &detail);
        }
        Err(_) => return resolve_all_transient(claims, "plan execution panicked"),
    };
    let ok_records: Vec<&CellRecord> = run
        .records
        .iter()
        .filter(|r| matches!(r.outcome, CellOutcome::Ok(_)))
        .collect();
    let journal_errors = cache.insert_batch(&ok_records);
    stats.add(ServeCounter::JournalErrors, journal_errors as u64);
    let by_fp: HashMap<u64, &CellRecord> = run.records.iter().map(|r| (r.fingerprint, r)).collect();
    for guard in claims {
        let result = match by_fp.get(&guard.fp()) {
            Some(rec) => match &rec.outcome {
                CellOutcome::Ok(_) => FlightResult::Done,
                CellOutcome::Crashed { payload } => FlightResult::Transient {
                    variant: rec.variant.clone(),
                    target: rec.target.clone(),
                    outcome: "crashed",
                    detail: payload.clone(),
                },
                CellOutcome::TimedOut { reason, .. } => FlightResult::Transient {
                    variant: rec.variant.clone(),
                    target: rec.target.clone(),
                    outcome: "timed-out",
                    detail: reason.clone(),
                },
                CellOutcome::WrongAnswer { detail } => FlightResult::Poisoned {
                    variant: rec.variant.clone(),
                    target: rec.target.clone(),
                    detail: detail.clone(),
                },
            },
            None => FlightResult::Transient {
                variant: guard.variant.clone(),
                target: guard.target.clone(),
                outcome: "crashed",
                detail: "cell missing from the executed plan".into(),
            },
        };
        guard.resolve(result);
    }
}

fn resolve_all_transient(claims: Vec<ClaimGuard>, detail: &str) {
    for guard in claims {
        let result = FlightResult::Transient {
            variant: guard.variant.clone(),
            target: guard.target.clone(),
            outcome: "crashed",
            detail: detail.to_string(),
        };
        guard.resolve(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn claims(this: &Arc<Flights>, fps: &[u64]) -> (Vec<ClaimGuard>, Vec<Arc<Flight>>) {
        let cells: Vec<CellClaim<'_>> = fps
            .iter()
            .map(|&fp| CellClaim {
                fp,
                variant: "v",
                target: "t",
            })
            .collect();
        Flights::claim_or_join(this, &cells, 42)
    }

    #[test]
    fn second_request_joins_instead_of_claiming() {
        let reg = Arc::new(Flights::new());
        let (c1, j1) = claims(&reg, &[10, 11]);
        assert_eq!((c1.len(), j1.len()), (2, 0));
        let (c2, j2) = claims(&reg, &[11, 12]);
        assert_eq!((c2.len(), j2.len()), (1, 1), "11 joined, 12 claimed");
        assert_eq!(reg.in_flight(), 3);

        // resolving fans out to the joiner and retires the flight
        for g in c1 {
            g.resolve(FlightResult::Done);
        }
        assert!(matches!(
            j2[0].wait_until(Instant::now()),
            Some(FlightResult::Done)
        ));
        assert_eq!(reg.in_flight(), 1);
        drop(c2);
    }

    #[test]
    fn dropped_claim_resolves_transient_so_waiters_reclaim() {
        let reg = Arc::new(Flights::new());
        let (c, _) = claims(&reg, &[77]);
        let (_, joined) = claims(&reg, &[77]);
        drop(c); // executor died without resolving
        match joined[0].wait_until(Instant::now() + Duration::from_secs(2)) {
            Some(FlightResult::Transient { outcome, .. }) => assert_eq!(outcome, "crashed"),
            other => panic!("expected transient after dropped claim, got {other:?}"),
        }
        // the fingerprint is claimable again
        let (c2, j2) = claims(&reg, &[77]);
        assert_eq!((c2.len(), j2.len()), (1, 0));
    }

    #[test]
    fn waiter_deadline_expiry_leaves_the_flight_running() {
        let reg = Arc::new(Flights::new());
        let (c, _) = claims(&reg, &[5]);
        let flight = c[0].flight();
        // a waiter that times out gets None, and the flight is still live
        assert!(flight.wait_until(Instant::now()).is_none());
        assert_eq!(reg.in_flight(), 1);
        c.into_iter().next().unwrap().resolve(FlightResult::Done);
        assert!(matches!(flight.peek(), Some(FlightResult::Done)));
    }

    #[test]
    fn merge_rules_group_by_graph_and_by_variant_set() {
        use indigo_styles::{Algorithm, Model};
        let reg = Arc::new(Flights::new());
        let v1 = StyleConfig::baseline(Algorithm::Tc, Model::Cuda);
        let v2 = StyleConfig::baseline(Algorithm::Bfs, Model::Cuda);
        let sub = |graph, variants: Vec<StyleConfig>, fp| Submission {
            graph,
            scale: Scale::Tiny,
            reps: 1,
            variants,
            budget: Duration::from_millis(100),
            fault: None,
            claims: claims(&reg, &[fp]).0,
        };
        // same graph → variant union; same variant set → graph union
        let batch = vec![
            sub(SuiteGraph::Grid2d, vec![v1.clone()], 1),
            sub(SuiteGraph::Grid2d, vec![v2.clone()], 2),
            sub(SuiteGraph::Rmat, vec![v1.clone(), v2.clone()], 3),
        ];
        let mut solo = Vec::new();
        let mut groups: Vec<Group> = Vec::new();
        for s in batch {
            if s.fault.is_some() {
                solo.push(Group::of(s));
            } else {
                match groups
                    .iter_mut()
                    .find(|g| g.scale == s.scale && g.reps == s.reps && g.graphs == [s.graph])
                {
                    Some(g) => g.absorb(s),
                    None => groups.push(Group::of(s)),
                }
            }
        }
        assert_eq!(groups.len(), 2);
        let mut merged: Vec<Group> = Vec::new();
        for g in groups {
            match merged.iter_mut().find(|m| {
                m.scale == g.scale && m.reps == g.reps && m.variant_names() == g.variant_names()
            }) {
                Some(m) => {
                    for graph in g.graphs {
                        if !m.graphs.contains(&graph) {
                            m.graphs.push(graph);
                        }
                    }
                    m.claims.extend(g.claims);
                }
                None => merged.push(g),
            }
        }
        assert_eq!(merged.len(), 1, "identical variant sets merge graphs");
        assert_eq!(merged[0].graphs, [SuiteGraph::Grid2d, SuiteGraph::Rmat]);
        assert_eq!(merged[0].variants.len(), 2);
        assert_eq!(merged[0].claims.len(), 3);
    }
}
