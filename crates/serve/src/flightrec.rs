//! Request scopes and the crash flight recorder (DESIGN.md §7.10).
//!
//! A [`RequestScope`] is born when a request is admitted and rides through
//! the whole pipeline: it carries the request's deterministic ID (client-
//! supplied `X-Request-Id` or the server-assigned `{seq:016x}`), the
//! arrival instant, and the per-stage durations the engine fills in as the
//! request moves admission → flight claim/join → batch merge → execution.
//! After writeback the server folds the scope into a fixed-size
//! [`ReqRecord`] and pushes it into the [`FlightRecorder`] — a lock-free
//! [`SeqRing`] of the most recent requests, alive in every build (the
//! chaos invariants run telemetry-off).
//!
//! Any 5xx response triggers a dump of the whole ring to
//! `FLIGHT_<n>_<id>.jsonl` in the configured directory — quarantines and
//! breaker trips surface as 500s, deadline exhaustion as 504s, so "every
//! 5xx dumps" covers all three trigger classes. Dumps are capped per
//! server lifetime so a failure storm cannot fill the disk; `/debug/
//! flightrec` reads the same ring on demand without writing anything.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use indigo_obs::{now_micros, SeqRing};

use crate::json::str_lit;

/// Records the flight recorder retains (newest win).
pub const FLIGHTREC_CAPACITY: usize = 256;

/// Most `FLIGHT_*.jsonl` dumps one server will write (failure-storm cap).
pub const MAX_FLIGHT_DUMPS: u64 = 64;

/// Longest request target preserved in a [`ReqRecord`] (longer targets are
/// truncated — the ID is the durable correlation key, not the target).
pub const MAX_RECORD_TARGET: usize = 48;

/// Longest request ID preserved in a [`ReqRecord`] (matches
/// `http::MAX_REQUEST_ID_BYTES`).
pub const MAX_RECORD_ID: usize = 64;

/// How a request left the pipeline (one byte in the POD record).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Outcome {
    /// Still in flight / never classified (unwritten records only).
    Unknown = 0,
    /// Fresh 2xx execution.
    Ok = 1,
    /// Answered entirely from the fingerprint cache.
    Cached = 2,
    /// Served degraded while a breaker was open.
    Degraded = 3,
    /// Shed by admission control (429).
    Shed = 4,
    /// Deadline exhausted (504).
    Timeout = 5,
    /// 5xx failure (retries exhausted, harness error).
    Error = 6,
    /// 4xx client error.
    BadRequest = 7,
    /// Wrong-answer quarantine (500, never retried).
    Quarantined = 8,
}

impl Outcome {
    /// Stable label for JSON bodies and dumps.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Unknown => "unknown",
            Outcome::Ok => "ok",
            Outcome::Cached => "cached",
            Outcome::Degraded => "degraded",
            Outcome::Shed => "shed",
            Outcome::Timeout => "timeout",
            Outcome::Error => "error",
            Outcome::BadRequest => "bad-request",
            Outcome::Quarantined => "quarantined",
        }
    }

    /// Classifies a status code when the engine didn't set anything finer.
    #[must_use]
    pub fn from_status(status: u16) -> Outcome {
        match status {
            200..=299 => Outcome::Ok,
            429 => Outcome::Shed,
            504 => Outcome::Timeout,
            400..=499 => Outcome::BadRequest,
            _ => Outcome::Error,
        }
    }
}

/// Per-request identity + stage attribution, threaded through the
/// pipeline by reference (see module docs).
#[derive(Clone, Debug)]
pub struct RequestScope {
    /// Server-assigned monotonic sequence number (dispatch order).
    pub seq: u64,
    /// The ID echoed as `X-Request-Id` and reported as `rid` in bodies:
    /// the client's sanitized ID if supplied, else `{seq:016x}`.
    pub echo: String,
    /// When the connection's bytes for this request arrived.
    pub arrived: Instant,
    /// Admission-queue wait: arrival → a worker picked the job up, µs.
    pub queue_us: u64,
    /// Claim submitted → merged plan started executing, µs (0 for cache
    /// hits, pure waiters, and non-engine routes).
    pub batch_wait_us: u64,
    /// Route entry → response body assembled, µs (includes batch wait).
    pub execute_us: u64,
    /// Execution attempts (1 = first try; 0 = never reached the engine).
    pub attempts: u64,
    /// For coalesced waiters: the `seq` of the request whose flight served
    /// them (0 = executed its own cells).
    pub served_by: u64,
    /// Pipeline outcome (refined by the engine; defaults from status).
    pub outcome: Outcome,
}

impl RequestScope {
    /// A scope for request `seq` arriving at `arrived`, echoing the
    /// client's sanitized ID when present.
    #[must_use]
    pub fn new(seq: u64, client_id: Option<String>, arrived: Instant) -> RequestScope {
        RequestScope {
            seq,
            echo: client_id.unwrap_or_else(|| format!("{seq:016x}")),
            arrived,
            queue_us: 0,
            batch_wait_us: 0,
            execute_us: 0,
            attempts: 0,
            served_by: 0,
            outcome: Outcome::Unknown,
        }
    }

    /// Elapsed µs since arrival (the running total).
    #[must_use]
    pub fn total_us(&self) -> u64 {
        self.arrived.elapsed().as_micros() as u64
    }

    /// The `"rid"`/`"served_by"`/`"timing"` JSON fragment appended to
    /// engine response bodies (leading comma included). `total_us` is
    /// stamped here, at body assembly, so `queue_us + execute_us ≈
    /// total_us` holds within the route-parse epsilon; the write stage
    /// can't appear in its own body and goes to the recorder instead.
    #[must_use]
    pub fn body_fragment(&self) -> String {
        let served = if self.served_by == 0 {
            "null".to_string()
        } else {
            format!("\"{:016x}\"", self.served_by)
        };
        format!(
            ",\"rid\":{},\"served_by\":{},\"timing\":{{\"queue_us\":{},\"batch_wait_us\":{},\"execute_us\":{},\"total_us\":{}}}",
            str_lit(&self.echo),
            served,
            self.queue_us,
            self.batch_wait_us,
            self.execute_us,
            self.total_us(),
        )
    }
}

/// One finished request, fixed-size and `Copy` (inline byte strings) so it
/// can live in the lock-free ring.
#[derive(Clone, Copy)]
pub struct ReqRecord {
    /// Server-assigned sequence number (sort key for dumps).
    pub seq: u64,
    /// Completion timestamp, µs since the process epoch.
    pub ts_us: u64,
    /// HTTP status written.
    pub status: u16,
    /// [`Outcome`] discriminant.
    pub outcome: u8,
    /// Execution attempts.
    pub attempts: u16,
    /// Serving flight's owner seq (0 = own execution).
    pub served_by: u64,
    /// Stage durations, µs (saturated into u32 — 71 min caps).
    pub queue_us: u32,
    /// See [`RequestScope::batch_wait_us`].
    pub batch_wait_us: u32,
    /// See [`RequestScope::execute_us`].
    pub execute_us: u32,
    /// Response serialization + socket write, µs.
    pub write_us: u32,
    /// End-to-end latency, µs.
    pub total_us: u32,
    /// Echoed request ID bytes (`id_len` of them).
    pub id: [u8; MAX_RECORD_ID],
    /// Length of [`ReqRecord::id`].
    pub id_len: u8,
    /// Request target bytes, truncated (`target_len` of them).
    pub target: [u8; MAX_RECORD_TARGET],
    /// Length of [`ReqRecord::target`].
    pub target_len: u8,
}

fn fill(dst: &mut [u8], src: &str) -> u8 {
    let mut n = 0usize;
    for &b in src.as_bytes() {
        if n == dst.len() {
            break;
        }
        dst[n] = b;
        n += 1;
    }
    n as u8
}

fn sat32(v: u64) -> u32 {
    v.min(u32::MAX as u64) as u32
}

impl ReqRecord {
    /// The all-zero record seeding unwritten ring slots (never exposed).
    #[must_use]
    pub fn blank() -> ReqRecord {
        ReqRecord {
            seq: 0,
            ts_us: 0,
            status: 0,
            outcome: Outcome::Unknown as u8,
            attempts: 0,
            served_by: 0,
            queue_us: 0,
            batch_wait_us: 0,
            execute_us: 0,
            write_us: 0,
            total_us: 0,
            id: [0; MAX_RECORD_ID],
            id_len: 0,
            target: [0; MAX_RECORD_TARGET],
            target_len: 0,
        }
    }

    /// Folds a finished request into a record. `write_us` is measured by
    /// the caller after the socket write completes.
    #[must_use]
    pub fn from_scope(scope: &RequestScope, target: &str, status: u16, write_us: u64) -> ReqRecord {
        let mut rec = ReqRecord::blank();
        rec.seq = scope.seq;
        rec.ts_us = now_micros();
        rec.status = status;
        rec.outcome = if scope.outcome == Outcome::Unknown {
            Outcome::from_status(status) as u8
        } else {
            scope.outcome as u8
        };
        rec.attempts = scope.attempts.min(u16::MAX as u64) as u16;
        rec.served_by = scope.served_by;
        rec.queue_us = sat32(scope.queue_us);
        rec.batch_wait_us = sat32(scope.batch_wait_us);
        rec.execute_us = sat32(scope.execute_us);
        rec.write_us = sat32(write_us);
        rec.total_us = sat32(scope.total_us());
        rec.id_len = fill(&mut rec.id, &scope.echo);
        rec.target_len = fill(&mut rec.target, target);
        rec
    }

    fn id_str(&self) -> &str {
        std::str::from_utf8(&self.id[..self.id_len as usize]).unwrap_or("")
    }

    fn target_str(&self) -> &str {
        std::str::from_utf8(&self.target[..self.target_len as usize]).unwrap_or("")
    }

    fn outcome_label(&self) -> &'static str {
        match self.outcome {
            1 => Outcome::Ok,
            2 => Outcome::Cached,
            3 => Outcome::Degraded,
            4 => Outcome::Shed,
            5 => Outcome::Timeout,
            6 => Outcome::Error,
            7 => Outcome::BadRequest,
            8 => Outcome::Quarantined,
            _ => Outcome::Unknown,
        }
        .label()
    }

    /// One JSONL line: the record's full stage timeline. `trigger` marks
    /// the record whose 5xx caused the dump it appears in.
    #[must_use]
    pub fn to_json_line(&self, trigger: bool) -> String {
        let served = if self.served_by == 0 {
            "null".to_string()
        } else {
            format!("\"{:016x}\"", self.served_by)
        };
        format!(
            "{{\"seq\":{},\"id\":{},\"ts_us\":{},\"target\":{},\"status\":{},\"outcome\":\"{}\",\"attempts\":{},\"served_by\":{},\"stages\":{{\"queue_us\":{},\"batch_wait_us\":{},\"execute_us\":{},\"write_us\":{},\"total_us\":{}}},\"trigger\":{}}}",
            self.seq,
            str_lit(self.id_str()),
            self.ts_us,
            str_lit(self.target_str()),
            self.status,
            self.outcome_label(),
            self.attempts,
            served,
            self.queue_us,
            self.batch_wait_us,
            self.execute_us,
            self.write_us,
            self.total_us,
            trigger,
        )
    }
}

/// The in-memory recorder: a seqlock ring of recent [`ReqRecord`]s plus
/// the dump budget.
pub struct FlightRecorder {
    ring: SeqRing<ReqRecord>,
    dumps: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// A fresh recorder with [`FLIGHTREC_CAPACITY`] slots.
    #[must_use]
    pub fn new() -> FlightRecorder {
        FlightRecorder {
            ring: SeqRing::new(FLIGHTREC_CAPACITY, ReqRecord::blank()),
            dumps: AtomicU64::new(0),
        }
    }

    /// Pushes one finished request (wait-free, allocation-free).
    pub fn push(&self, rec: ReqRecord) {
        self.ring.push(rec);
    }

    /// Records pushed over the recorder's lifetime.
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.ring.pushed()
    }

    /// Dumps written so far.
    #[must_use]
    pub fn dumps_written(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Ring contents, oldest first.
    #[must_use]
    pub fn records(&self) -> Vec<ReqRecord> {
        let mut recs = self.ring.collect();
        recs.sort_unstable_by_key(|r| r.seq);
        recs
    }

    /// The `/debug/flightrec` body: every live record plus ring totals.
    #[must_use]
    pub fn to_json(&self) -> String {
        let recs = self.records();
        let mut out = String::with_capacity(recs.len() * 160 + 64);
        out.push_str("{\"records\":[");
        for (i, r) in recs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_json_line(false));
        }
        out.push_str(&format!(
            "],\"pushed\":{},\"dumps_written\":{}}}",
            self.pushed(),
            self.dumps_written()
        ));
        out
    }

    /// Dumps the ring to `FLIGHT_<n>_<trigger id>.jsonl` under `dir`,
    /// marking `trigger_seq`'s record. Returns the path, or `None` once
    /// the [`MAX_FLIGHT_DUMPS`] budget is spent (a failure storm must not
    /// fill the disk) or if the write failed (dumping is best-effort —
    /// the serving path never errors on recorder trouble).
    pub fn dump(&self, dir: &Path, trigger_seq: u64, trigger_id: &str) -> Option<PathBuf> {
        let n = self.dumps.fetch_add(1, Ordering::Relaxed);
        if n >= MAX_FLIGHT_DUMPS {
            self.dumps.store(MAX_FLIGHT_DUMPS, Ordering::Relaxed);
            return None;
        }
        let safe_id: String = trigger_id
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .take(40)
            .collect();
        let path = dir.join(format!("FLIGHT_{n:03}_{safe_id}.jsonl"));
        let mut body = String::new();
        for r in self.records() {
            body.push_str(&r.to_json_line(r.seq == trigger_seq));
            body.push('\n');
        }
        if std::fs::create_dir_all(dir).is_err() || std::fs::write(&path, body).is_err() {
            return None;
        }
        indigo_obs::Counter::ServeFlightDumps.incr();
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope(seq: u64) -> RequestScope {
        let mut s = RequestScope::new(seq, None, Instant::now());
        s.queue_us = 10;
        s.batch_wait_us = 5;
        s.execute_us = 40;
        s.attempts = 1;
        s
    }

    #[test]
    fn scope_assigns_hex_ids_and_honors_client_ids() {
        let s = RequestScope::new(255, None, Instant::now());
        assert_eq!(s.echo, "00000000000000ff");
        let c = RequestScope::new(7, Some("mine-42".into()), Instant::now());
        assert_eq!(c.echo, "mine-42");
        let frag = c.body_fragment();
        assert!(frag.starts_with(",\"rid\":\"mine-42\""));
        assert!(frag.contains("\"timing\":{\"queue_us\":0"));
        assert!(frag.contains("\"served_by\":null"));
    }

    #[test]
    fn records_roundtrip_through_the_ring_in_seq_order() {
        let rec = FlightRecorder::new();
        for i in [3u64, 1, 2] {
            rec.push(ReqRecord::from_scope(&scope(i), "/run?algo=bfs", 200, 7));
        }
        let got = rec.records();
        assert_eq!(got.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(got[0].queue_us, 10);
        assert_eq!(got[0].write_us, 7);
        let body = rec.to_json();
        assert!(body.contains("\"target\":\"/run?algo=bfs\""));
        assert!(body.contains("\"pushed\":3"));
    }

    #[test]
    fn outcome_defaults_from_status_when_engine_left_unknown() {
        let r = ReqRecord::from_scope(&scope(1), "/run", 504, 0);
        assert_eq!(r.outcome, Outcome::Timeout as u8);
        let mut s = scope(2);
        s.outcome = Outcome::Quarantined;
        let r = ReqRecord::from_scope(&s, "/run", 500, 0);
        assert_eq!(r.outcome, Outcome::Quarantined as u8);
        assert!(r.to_json_line(true).contains("\"outcome\":\"quarantined\""));
    }

    #[test]
    fn dump_writes_jsonl_and_respects_the_budget() {
        let dir = std::env::temp_dir().join(format!("indigo-flightrec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = FlightRecorder::new();
        rec.push(ReqRecord::from_scope(&scope(1), "/run?algo=bfs", 200, 1));
        rec.push(ReqRecord::from_scope(&scope(2), "/run?algo=sssp", 500, 1));
        let path = rec.dump(&dir, 2, "0000000000000002").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"trigger\":true"));
        assert!(text.contains("\"id\":\"0000000000000002\""));
        assert!(text.contains("\"stages\":{\"queue_us\":10"));
        assert_eq!(rec.dumps_written(), 1);
        // budget: after MAX_FLIGHT_DUMPS the recorder refuses politely
        for _ in 0..(MAX_FLIGHT_DUMPS + 5) {
            rec.dump(&dir, 1, "x");
        }
        assert!(rec.dump(&dir, 1, "x").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn long_ids_and_targets_truncate_without_panicking() {
        let mut s = scope(1);
        s.echo = "i".repeat(500);
        let r = ReqRecord::from_scope(&s, &"t".repeat(500), 200, 0);
        assert_eq!(r.id_len as usize, MAX_RECORD_ID);
        assert_eq!(r.target_len as usize, MAX_RECORD_TARGET);
        // still valid JSON-able strings
        assert!(r.to_json_line(false).contains(&"i".repeat(MAX_RECORD_ID)));
    }
}
