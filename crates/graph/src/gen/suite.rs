//! The default 5-graph evaluation suite (analog of paper Tables 4/5).
//!
//! Each [`SuiteGraph`] names one of the paper's input families; [`Scale`]
//! selects how large an instance to generate. `Scale::Default` is sized so
//! that the *entire* style matrix (hundreds of programs × 5 inputs) finishes
//! on a laptop in minutes, while still exceeding L2-cache sizes and keeping
//! the family-defining degree/diameter regimes of the originals.

use crate::Csr;

/// One of the five evaluation inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SuiteGraph {
    /// `2d-2e20.sym` family: uniform degree-4 grid, huge diameter.
    Grid2d,
    /// `coPapersDBLP` family: clique-overlap collaboration network.
    CoPapers,
    /// `rmat22.sym` family: skewed RMAT.
    Rmat,
    /// `soc-LiveJournal1` family: preferential-attachment social network.
    SocialNetwork,
    /// `USA-road-d.NY` family: sparse high-diameter road map.
    RoadMap,
}

/// All five suite graphs, in the paper's Table 4 order.
pub const SUITE_GRAPHS: [SuiteGraph; 5] = [
    SuiteGraph::Grid2d,
    SuiteGraph::CoPapers,
    SuiteGraph::Rmat,
    SuiteGraph::SocialNetwork,
    SuiteGraph::RoadMap,
];

impl SuiteGraph {
    /// Short display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            SuiteGraph::Grid2d => "2d-grid",
            SuiteGraph::CoPapers => "copapers",
            SuiteGraph::Rmat => "rmat",
            SuiteGraph::SocialNetwork => "soc-net",
            SuiteGraph::RoadMap => "road",
        }
    }

    /// Name of the corresponding paper input.
    pub fn paper_input(self) -> &'static str {
        match self {
            SuiteGraph::Grid2d => "2d-2e20.sym",
            SuiteGraph::CoPapers => "coPapersDBLP",
            SuiteGraph::Rmat => "rmat22.sym",
            SuiteGraph::SocialNetwork => "soc-LiveJournal1",
            SuiteGraph::RoadMap => "USA-road-d.NY",
        }
    }
}

/// Instance-size selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scale {
    /// A few hundred vertices — unit tests.
    Tiny,
    /// A few thousand vertices — integration tests, smoke experiments.
    Small,
    /// Tens of thousands of vertices — the default experiment scale.
    Default,
    /// Hundreds of thousands of vertices — closer to the paper's sizes.
    Large,
}

/// Fixed seed for the suite instances, so every crate sees identical graphs.
const SUITE_SEED: u64 = 0x1_D160; // "indigo"

/// Generates one suite input at the requested scale (deterministic).
pub fn suite_graph(which: SuiteGraph, scale: Scale) -> Csr {
    use Scale::*;
    use SuiteGraph::*;
    match which {
        Grid2d => {
            let side = match scale {
                Tiny => 16,
                Small => 64,
                Default => 224,
                Large => 724,
            };
            super::grid2d(side, side)
        }
        CoPapers => {
            let n = match scale {
                Tiny => 200,
                Small => 1_500,
                Default => 12_000,
                Large => 80_000,
            };
            super::clique_overlap(n, 0.8, SUITE_SEED)
        }
        Rmat => {
            let sc = match scale {
                Tiny => 8,
                Small => 11,
                Default => 15,
                Large => 18,
            };
            super::rmat(sc, 8, SUITE_SEED)
        }
        SocialNetwork => {
            let n = match scale {
                Tiny => 250,
                Small => 3_000,
                Default => 30_000,
                Large => 200_000,
            };
            super::preferential_attachment(n, 9, SUITE_SEED)
        }
        RoadMap => {
            let (w, h) = match scale {
                Tiny => (20, 12),
                Small => (80, 48),
                Default => (280, 160),
                Large => (720, 400),
            };
            super::road(w, h, SUITE_SEED)
        }
    }
}

/// Generates all five suite inputs at `scale`, Table 4 order.
pub fn default_suite(scale: Scale) -> Vec<Csr> {
    SUITE_GRAPHS
        .iter()
        .map(|&g| suite_graph(g, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_generate_at_tiny() {
        let gs = default_suite(Scale::Tiny);
        assert_eq!(gs.len(), 5);
        for g in &gs {
            assert!(g.num_nodes() > 0);
            assert!(g.is_symmetric());
        }
    }

    #[test]
    fn scales_are_monotone() {
        for &which in &SUITE_GRAPHS {
            let t = suite_graph(which, Scale::Tiny).num_nodes();
            let s = suite_graph(which, Scale::Small).num_nodes();
            assert!(t < s, "{:?}: {t} !< {s}", which);
        }
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<_> = SUITE_GRAPHS.iter().map(|g| g.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }
}
