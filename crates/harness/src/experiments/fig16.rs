//! Figure 16 / Table 6: the best style variants vs the optimized baselines
//! (§5.17).
//!
//! For each (algorithm, model) the best-performing style is the one with
//! the highest average throughput over all inputs; its per-input speedup
//! over the baseline implementation is reported, plus the Table 6
//! geometric means. MIS has no GPU baseline (absent from Gardenia).

use super::Dataset;
use crate::report::Report;
use crate::stats::geomean;
use indigo_core::GraphInput;
use indigo_exec::SYSTEM_PROFILES;
use indigo_gpusim::{rtx3090, titan_v, Device};
use indigo_graph::gen::{suite_graph, SUITE_GRAPHS};
use indigo_styles::{Algorithm, Model, StyleConfig};
use std::collections::HashMap;

/// Baseline throughput (GE/s) for `(algo, target)` on one input;
/// `None` when the baseline does not exist (GPU MIS).
fn baseline_geps(
    algo: Algorithm,
    input: &GraphInput,
    gpu: Option<Device>,
    threads: usize,
) -> Option<f64> {
    let m = input.num_edges() as f64;
    let secs = match (algo, gpu) {
        (Algorithm::Bfs, Some(d)) => indigo_baselines::bfs::gpu(input, d, indigo_core::SOURCE).1,
        (Algorithm::Bfs, None) => indigo_baselines::bfs::cpu(input, threads, indigo_core::SOURCE).1,
        (Algorithm::Sssp, Some(d)) => indigo_baselines::sssp::gpu(input, d, indigo_core::SOURCE).1,
        (Algorithm::Sssp, None) => {
            indigo_baselines::sssp::cpu(input, threads, indigo_core::SOURCE).1
        }
        (Algorithm::Cc, Some(d)) => indigo_baselines::cc::gpu(input, d).1,
        (Algorithm::Cc, None) => indigo_baselines::cc::cpu(input, threads).1,
        (Algorithm::Mis, Some(_)) => return None, // not in Gardenia (§5.17)
        (Algorithm::Mis, None) => indigo_baselines::mis::cpu(input, threads).1,
        (Algorithm::Pr, Some(d)) => indigo_baselines::pr::gpu(input, d).1,
        (Algorithm::Pr, None) => indigo_baselines::pr::cpu(input, threads).1,
        (Algorithm::Tc, Some(d)) => indigo_baselines::tc::gpu(input, d).1,
        (Algorithm::Tc, None) => indigo_baselines::tc::cpu(input, threads).1,
    };
    (secs > 0.0).then(|| m / secs / 1e9)
}

/// The best style per (model, algorithm): highest average GE/s over all
/// inputs and targets of that model.
pub fn best_styles(ds: &Dataset) -> HashMap<(Model, Algorithm), StyleConfig> {
    let mut sums: HashMap<String, (StyleConfig, f64, usize)> = HashMap::new();
    for m in &ds.measurements {
        if !m.geps.is_finite() {
            continue;
        }
        let e = sums.entry(m.cfg.name()).or_insert((m.cfg, 0.0, 0));
        e.1 += m.geps;
        e.2 += 1;
    }
    let mut best: HashMap<(Model, Algorithm), (StyleConfig, f64)> = HashMap::new();
    for (cfg, total, count) in sums.into_values() {
        let avg = total / count as f64;
        let key = (cfg.model, cfg.algorithm);
        match best.get(&key) {
            Some((_, cur)) if *cur >= avg => {}
            _ => {
                best.insert(key, (cfg, avg));
            }
        }
    }
    best.into_iter().map(|(k, (cfg, _))| (k, cfg)).collect()
}

/// Builds the Fig 16 + Table 6 report.
pub fn fig16(ds: &Dataset) -> Report {
    let mut r = Report::new(
        "fig16",
        "Best style per algorithm vs optimized baselines; Table 6 geomeans (§5.17)",
    );
    r.csv_row("model,target,algorithm,graph,best_style,speedup");
    let best = best_styles(ds);

    // per-model target list: (gpu device, threads) pairs
    let gpu_targets: Vec<(String, Option<Device>, usize)> = vec![
        (titan_v().name.to_string(), Some(titan_v()), 0),
        (rtx3090().name.to_string(), Some(rtx3090()), 0),
    ];
    let cpu_targets: Vec<(String, Option<Device>, usize)> = SYSTEM_PROFILES
        .iter()
        .map(|p| (p.name.to_string(), None, p.threads))
        .collect();

    let mut table6: Vec<(Model, Vec<(Algorithm, f64)>)> = Vec::new();
    for model in Model::ALL {
        let targets = if model == Model::Cuda {
            &gpu_targets
        } else {
            &cpu_targets
        };
        r.line(format!("-- {} --", model.display()));
        let mut per_algo_geo: Vec<(Algorithm, f64)> = Vec::new();
        for algo in Algorithm::ALL {
            let Some(cfg) = best.get(&(model, algo)) else {
                continue;
            };
            let mut speedups = Vec::new();
            for &which in &SUITE_GRAPHS {
                let input = GraphInput::new(suite_graph(which, ds.scale));
                for (tname, gpu, threads) in targets {
                    let ours = ds
                        .measurements
                        .iter()
                        .find(|m| m.cfg == *cfg && m.graph == which.label() && &m.target == tname)
                        .map(|m| m.geps);
                    let Some(ours) = ours else { continue };
                    let Some(base) = baseline_geps(algo, &input, *gpu, *threads) else {
                        continue;
                    };
                    let speedup = ours / base;
                    speedups.push(speedup);
                    r.csv_row(format!(
                        "{},{tname},{},{},{},{speedup:.4}",
                        model.label(),
                        algo.abbrev(),
                        which.label(),
                        cfg.name()
                    ));
                }
            }
            if !speedups.is_empty() {
                let geo = geomean(&speedups);
                per_algo_geo.push((algo, geo));
                r.line(format!(
                    "{:<5} best={}  speedup geomean {:.2} (min {:.2}, max {:.2}, n={})",
                    algo.abbrev(),
                    best[&(model, algo)].name(),
                    geo,
                    speedups.iter().copied().fold(f64::INFINITY, f64::min),
                    speedups.iter().copied().fold(0.0f64, f64::max),
                    speedups.len()
                ));
            } else {
                r.line(format!("{:<5} (no baseline — N/A)", algo.abbrev()));
            }
        }
        let geos: Vec<f64> = per_algo_geo.iter().map(|(_, g)| *g).collect();
        r.line(format!(
            "{} Table-6 geomean over algorithms: {:.2}",
            model.display(),
            geomean(&geos)
        ));
        table6.push((model, per_algo_geo));
    }

    r.line("");
    r.line("Table 6 analog (average speedup over baseline codes):");
    let order = [
        Algorithm::Bfs,
        Algorithm::Sssp,
        Algorithm::Cc,
        Algorithm::Mis,
        Algorithm::Pr,
        Algorithm::Tc,
    ];
    let mut head = format!("{:<12}", "Language");
    for a in order {
        head.push_str(&format!(" {:>6}", a.abbrev()));
    }
    head.push_str("  Geomean");
    r.line(&head);
    for (model, per_algo) in &table6 {
        let mut row = format!("{:<12}", model.display());
        for a in order {
            match per_algo.iter().find(|(x, _)| *x == a) {
                Some((_, g)) => row.push_str(&format!(" {g:>6.2}")),
                None => row.push_str(&format!(" {:>6}", "N/A")),
            }
        }
        let geos: Vec<f64> = per_algo.iter().map(|(_, g)| *g).collect();
        row.push_str(&format!("  {:>7.2}", geomean(&geos)));
        r.line(&row);
    }
    r
}
