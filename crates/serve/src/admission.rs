//! Bounded admission queue (DESIGN.md §7.8).
//!
//! The first stage of the request pipeline: accepted connections either fit
//! in a fixed-capacity queue or are shed immediately with `429 +
//! Retry-After`. The queue is the *only* unbounded-work choke point in the
//! server — everything past it is deadline-bounded — so a full queue is the
//! signal that the server is saturated and honesty (shed now) beats
//! buffering (time out later).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// Queue at capacity: shed the item.
    Full(T),
    /// Queue closed (server shutting down).
    Closed(T),
}

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue with blocking pop and non-blocking push.
pub struct Admission<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
    record_depth: bool,
}

impl<T> Admission<T> {
    /// An open queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Admission<T> {
        Admission {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            record_depth: true,
        }
    }

    /// Like [`Admission::new`] but without `serve.queue_depth` telemetry —
    /// for internal queues (the batch former) whose depth would pollute the
    /// request-queue histogram.
    pub fn new_unrecorded(capacity: usize) -> Admission<T> {
        Admission {
            record_depth: false,
            ..Admission::new(capacity)
        }
    }

    /// Enqueues `item`, or returns it when the queue is full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.queue.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        st.queue.push_back(item);
        if self.record_depth {
            indigo_obs::Hist::ServeQueueDepth.record(st.queue.len() as u64);
            indigo_obs::Gauge::ServeQueueDepth.set(st.queue.len() as i64);
        }
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once the queue is closed and empty.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = st.queue.pop_front() {
                if self.record_depth {
                    indigo_obs::Gauge::ServeQueueDepth.set(st.queue.len() as i64);
                }
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A queued item if one is immediately available (never blocks).
    pub fn try_pop(&self) -> Option<T> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .pop_front()
    }

    /// Blocks up to `timeout` for the next item. `None` means the wait
    /// timed out, or the queue closed and drained — either way there is
    /// nothing to do right now. This is the queue's own timed wait: callers
    /// (the batch former, tests) never need a throwaway watcher thread.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = st.queue.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timed_out) = self
                .ready
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// blocked poppers wake up.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.closed = true;
        drop(st);
        self.ready.notify_all();
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_queue_sheds_and_returns_the_item() {
        let q = Admission::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_unblocks_poppers() {
        let q = Admission::new(4);
        q.try_push(7).unwrap();
        q.close();
        match q.try_push(8) {
            Err(PushError::Closed(8)) => {}
            other => panic!("expected Closed(8), got {other:?}"),
        }
        // pending items still drain after close...
        assert_eq!(q.pop(), Some(7));
        // ...and a pop on an empty closed queue returns None immediately,
        // even through the timed path
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop_timeout(Duration::from_secs(5)), None);
    }

    #[test]
    fn pop_timeout_waits_out_its_budget_then_gives_up() {
        let q: Admission<i32> = Admission::new(1);
        let t0 = Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_millis(40)), None);
        assert!(t0.elapsed() >= Duration::from_millis(35));
        // an item already queued returns without waiting
        q.try_push(42).unwrap();
        let t0 = Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_secs(5)), Some(42));
        assert!(t0.elapsed() < Duration::from_secs(1));
        assert_eq!(q.try_pop(), None);
    }
}
