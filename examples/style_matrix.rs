//! Prints the suite's structural tables: the style applicability matrix
//! (paper Table 2) and the variant counts per model (paper Table 3), plus
//! a few sample variant names selected with the config-file filter syntax.
//!
//! ```text
//! cargo run --example style_matrix [-- "<filter>"]
//! cargo run --example style_matrix -- "model=cuda algo=sssp granularity=warp flow=push"
//! ```

use indigo_styles::{applicability, enumerate, filter::VariantFilter};

fn main() {
    println!("Table 2 analog — included implementation styles:\n");
    print!("{}", applicability::render_matrix());
    println!("\nTable 3 analog — number of code versions:\n");
    print!("{}", applicability::render_counts());

    let filter_text = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "model=cuda flow=push granularity=warp determinism=nondet".to_string());
    println!("\nvariants selected by filter '{filter_text}':");
    match VariantFilter::parse(&filter_text) {
        Ok(f) => {
            let picked = f.apply(&enumerate::full_suite());
            for cfg in picked.iter().take(12) {
                println!("  {}", cfg.name());
            }
            if picked.len() > 12 {
                println!("  ... and {} more", picked.len() - 12);
            }
            println!("  total: {}", picked.len());
        }
        Err(e) => eprintln!("bad filter: {e}"),
    }
}
