//! Orientation (redundant-edge-removal) triangle counting — the Gardenia
//! optimization the paper credits for beating its TC styles (§5.17).
//!
//! Preprocessing orients every undirected edge from the lower to the higher
//! endpoint in the (degree, id) total order; each triangle then appears as
//! exactly one directed wedge intersection, cutting the intersection work
//! several-fold on skewed graphs. Preprocessing is counted as graph setup,
//! not kernel time, matching how such baselines report throughput.

use indigo_core::GraphInput;
use indigo_exec::frontier::grained_for;
use indigo_exec::{PoolRegistry, Schedule};
use indigo_gpusim::{Assign, BufKind, Device, GpuBuf, ReduceStyle, Sim};
use indigo_graph::{Csr, NodeId};
use std::sync::atomic::{AtomicU64, Ordering};

/// The oriented (DAG) adjacency: for each vertex, its out-neighbors in the
/// (degree, id) order, sorted by id.
#[derive(Default)]
pub struct Oriented {
    row: Vec<usize>,
    nbr: Vec<NodeId>,
}

impl Oriented {
    /// Builds the orientation from an undirected CSR.
    pub fn build(g: &Csr) -> Self {
        let mut o = Oriented::default();
        o.rebuild(g);
        o
    }

    /// Refills the orientation from `g`, reusing the allocations when
    /// capacity suffices (DESIGN.md §7.7 scratch-reuse discipline).
    pub fn rebuild(&mut self, g: &Csr) {
        let n = g.num_nodes();
        let rank = |v: NodeId| (g.degree(v), v);
        self.row.clear();
        self.nbr.clear();
        self.row.reserve(n + 1);
        self.nbr.reserve(g.num_edges() / 2);
        self.row.push(0);
        for v in 0..n as NodeId {
            for &u in g.neighbors(v) {
                if rank(u) > rank(v) {
                    self.nbr.push(u);
                }
            }
            // neighbors were id-sorted; the (degree, id) filter keeps the
            // id order within the kept subsequence only if ids were sorted —
            // they were, so `nbr` stays sorted per row
            self.row.push(self.nbr.len());
        }
    }

    /// Out-neighbors of `v`.
    pub fn out(&self, v: NodeId) -> &[NodeId] {
        &self.nbr[self.row[v as usize]..self.row[v as usize + 1]]
    }

    /// Total directed (oriented) edges = undirected edge count.
    pub fn num_out_edges(&self) -> usize {
        self.nbr.len()
    }
}

static SCRATCH: PoolRegistry<Oriented> = PoolRegistry::new();

/// CPU orientation TC. Returns `(count, seconds)` — seconds exclude the
/// orientation build (see module docs).
pub fn cpu(input: &GraphInput, threads: usize) -> (u64, f64) {
    let g = &input.csr;
    let mut scratch = SCRATCH.lease_guard(0, Oriented::default);
    scratch.rebuild(g);
    let oriented: &Oriented = &scratch;
    let pool = crate::pool(threads);
    let start = std::time::Instant::now();
    let count = AtomicU64::new(0);
    grained_for(
        &pool,
        g.num_nodes(),
        Schedule::Dynamic { chunk: 64 },
        |vi, _| {
            let v = vi as NodeId;
            let out_v = oriented.out(v);
            let mut local = 0u64;
            for &u in out_v {
                local += sorted_intersect(out_v, oriented.out(u));
            }
            if local > 0 {
                count.fetch_add(local, Ordering::Relaxed);
            }
        },
    );
    (count.load(Ordering::Relaxed), start.elapsed().as_secs_f64())
}

/// Simulated-GPU orientation TC (warp granularity over vertices, binary
/// search in the shorter list, reduction-add counter).
pub fn gpu(input: &GraphInput, device: Device) -> (u64, f64) {
    let oriented = Oriented::build(&input.csr);
    let n = input.csr.num_nodes();
    let row_u32: Vec<u32> = oriented.row.iter().map(|&o| o as u32).collect();
    let row = GpuBuf::from_slice(&row_u32);
    let nbr = GpuBuf::from_slice(&oriented.nbr);
    let mut sim = Sim::new(device);
    let count = sim.launch_reduce_u64(
        n,
        Assign::WarpPerItem,
        false,
        ReduceStyle::ReductionAdd,
        BufKind::Atomic,
        |ctx, vi| {
            let beg = ctx.ld(&row, vi) as usize;
            let end = ctx.ld(&row, vi + 1) as usize;
            let lanes = ctx.lane_count();
            let mut i = beg + ctx.lane();
            let mut local = 0u64;
            while i < end {
                let u = ctx.ld(&nbr, i) as usize;
                let ubeg = ctx.ld(&row, u) as usize;
                let uend = ctx.ld(&row, u + 1) as usize;
                // intersect out(v) x out(u): scan v's list, bsearch u's
                for k in beg..end {
                    let w = ctx.ld(&nbr, k);
                    let (mut lo, mut hi) = (ubeg, uend);
                    while lo < hi {
                        let mid = lo + (hi - lo) / 2;
                        match ctx.ld(&nbr, mid).cmp(&w) {
                            std::cmp::Ordering::Equal => {
                                local += 1;
                                break;
                            }
                            std::cmp::Ordering::Less => lo = mid + 1,
                            std::cmp::Ordering::Greater => hi = mid,
                        }
                    }
                }
                i += lanes;
            }
            if local > 0 {
                ctx.reduce_add_u64(local);
            }
        },
    );
    (count, sim.elapsed_secs())
}

/// Size of the intersection of two sorted slices.
fn sorted_intersect(a: &[NodeId], b: &[NodeId]) -> u64 {
    let (mut i, mut j, mut c) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use indigo_core::serial;
    use indigo_gpusim::titan_v;
    use indigo_graph::gen::{self, toy};

    #[test]
    fn orientation_halves_edges() {
        let g = toy::complete(10);
        let o = Oriented::build(&g);
        assert_eq!(o.num_out_edges(), g.num_edges() / 2);
        // every out-list is sorted
        for v in 0..10u32 {
            assert!(o.out(v).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn cpu_matches_serial() {
        for g in [
            toy::complete(8),
            toy::two_triangles(),
            gen::gnp(150, 0.08, 17),
            gen::clique_overlap(300, 2.0, 3),
        ] {
            let input = GraphInput::new(g);
            let expect = serial::triangles(&input.csr);
            assert_eq!(cpu(&input, 3).0, expect, "{}", input.name());
        }
    }

    #[test]
    fn gpu_matches_serial() {
        for g in [toy::complete(8), gen::gnp(100, 0.1, 17)] {
            let input = GraphInput::new(g);
            let expect = serial::triangles(&input.csr);
            let (got, secs) = gpu(&input, titan_v());
            assert_eq!(got, expect, "{}", input.name());
            assert!(secs > 0.0);
        }
    }

    #[test]
    fn triangle_free() {
        let input = GraphInput::new(gen::grid2d(7, 7));
        assert_eq!(cpu(&input, 2).0, 0);
        assert_eq!(gpu(&input, titan_v()).0, 0);
    }
}
