//! Prints the Table 3 analog: variant counts per programming model and
//! algorithm (`cargo run -p indigo-styles --example counts`).

fn main() {
    print!("{}", indigo_styles::applicability::render_counts());
}
