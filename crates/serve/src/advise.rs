//! Serving-side style advisor: `style=auto` resolution and `/advise`
//! (DESIGN.md §7.11).
//!
//! The server already holds everything the offline advisor needs: the
//! fingerprint cache is a measured (variant, graph) → throughput table, and
//! the shards own the resident suite graphs whose features the model keys
//! on. [`AdvisorHub`] memoizes both halves — per-(graph, scale) feature
//! vectors behind a shared [`StatsScratch`], and one fitted
//! [`Advisor`] per cache generation. The cache is insert-only, so its cell
//! count identifies its contents: any new journaled cell bumps the count
//! and the next advised request refits against the richer table. An empty
//! cache degrades to [`indigo_advisor::Method::Baseline`] — `style=auto`
//! then resolves to the canonical baseline variant, never an error.

use crate::cache::ResultCache;
use crate::engine::Shard;
use indigo_advisor::{Advice, Advisor, TrainingCell};
use indigo_graph::gen::Scale;
use indigo_graph::stats::{FeatureVector, GraphStats, StatsScratch};
use indigo_harness::advise::parse_variant_name;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Feature memo: shared BFS scratch plus per-(graph, scale) vectors.
type FeatureMemo = (StatsScratch, HashMap<(&'static str, Scale), FeatureVector>);

/// One fitted advisor, valid for a (cache generation, feature scale) pair.
struct Memo {
    generation: usize,
    scale: Scale,
    advisor: Arc<Advisor>,
}

/// Memoized feature extraction + advisor fitting for the serving path.
#[derive(Default)]
pub struct AdvisorHub {
    features: Mutex<FeatureMemo>,
    fitted: Mutex<Option<Memo>>,
}

impl AdvisorHub {
    /// An empty hub; everything is computed (and memoized) on first use.
    pub fn new() -> AdvisorHub {
        AdvisorHub::default()
    }

    /// Measured features of `shard`'s graph at `scale`, memoized per
    /// (graph, scale) — the graph generators are deterministic, so a
    /// feature vector never goes stale.
    pub fn features(&self, shard: &Shard, scale: Scale) -> FeatureVector {
        let mut guard = self.features.lock().unwrap_or_else(|e| e.into_inner());
        let (scratch, memo) = &mut *guard;
        let key = (shard.which.label(), scale);
        if let Some(f) = memo.get(&key) {
            return *f;
        }
        let g = shard.graph(scale);
        let f = GraphStats::compute_with(&g, scratch).features();
        memo.insert(key, f);
        f
    }

    /// The advisor fitted from the current cache contents, with training
    /// features taken at `scale`. Refits only when the cache has grown (its
    /// cell count is its generation — the cache is insert-only) or the
    /// scale changed; otherwise the memoized fit is shared.
    pub fn advisor(
        &self,
        cache: &ResultCache,
        shards: &HashMap<&'static str, Shard>,
        scale: Scale,
    ) -> Arc<Advisor> {
        let generation = cache.len();
        {
            let memo = self.fitted.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(m) = &*memo {
                if m.generation == generation && m.scale == scale {
                    return Arc::clone(&m.advisor);
                }
            }
        }
        // Deterministic fit regardless of hash-map iteration order.
        let mut cells = cache.cells();
        cells.sort_by(|a, b| {
            (&a.variant, &a.graph, &a.target).cmp(&(&b.variant, &b.graph, &b.target))
        });
        let mut training = Vec::with_capacity(cells.len());
        for c in &cells {
            let Some((algo, model)) = parse_variant_name(&c.variant) else {
                continue; // foreign journal line; not a style cell
            };
            let Some(shard) = shards.get(c.graph.as_str()) else {
                continue; // not a resident suite graph
            };
            training.push(TrainingCell {
                algo,
                model,
                graph: c.graph.clone(),
                variant: c.variant.clone(),
                features: self.features(shard, scale),
                geps: c.geps(),
            });
        }
        let advisor = Arc::new(Advisor::fit(&training));
        *self.fitted.lock().unwrap_or_else(|e| e.into_inner()) = Some(Memo {
            generation,
            scale,
            advisor: Arc::clone(&advisor),
        });
        advisor
    }
}

/// Everything one advised answer needs: the prediction plus the query
/// graph's features and the fit's provenance for the `/advise` body.
pub struct Advised {
    /// The ranked prediction.
    pub advice: Advice,
    /// Features of the query graph at the requested scale.
    pub features: FeatureVector,
    /// Training cells behind the fit (0 = baseline fallback).
    pub training_cells: usize,
    /// Distinct training graphs behind the fit.
    pub training_graphs: usize,
}

/// One-call advisory: fit (or reuse) the advisor and predict for
/// (`algo`, `model`) on `shard`'s graph at `scale`.
pub fn advise(
    hub: &AdvisorHub,
    cache: &ResultCache,
    shards: &HashMap<&'static str, Shard>,
    shard: &Shard,
    scale: Scale,
    algo: indigo_styles::Algorithm,
    model: indigo_styles::Model,
) -> Advised {
    let features = hub.features(shard, scale);
    let advisor = hub.advisor(cache, shards, scale);
    Advised {
        advice: advisor.advise(algo, model, &features),
        features,
        training_cells: advisor.num_cells(),
        training_graphs: advisor.num_graphs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indigo_advisor::Method;
    use indigo_graph::gen::SuiteGraph;
    use indigo_harness::journal::fingerprint;
    use indigo_harness::{CellOutcome, CellRecord, Measurement};
    use indigo_styles::{Algorithm, Model, StyleConfig};

    fn shards() -> HashMap<&'static str, Shard> {
        let mut m = HashMap::new();
        for g in indigo_graph::gen::SUITE_GRAPHS {
            m.insert(
                g.label(),
                Shard::new(g, crate::breaker::BreakerConfig::default()),
            );
        }
        m
    }

    fn ok_record(cfg: &StyleConfig, graph: &'static str, geps: f64) -> CellRecord {
        let name = cfg.name();
        CellRecord {
            fingerprint: fingerprint(Scale::Tiny, 1, true, &name, graph, "titan-v"),
            variant: name,
            graph,
            target: "titan-v".into(),
            outcome: CellOutcome::Ok(Measurement {
                cfg: cfg.clone(),
                graph,
                target: "titan-v".into(),
                geps,
                iterations: 1,
            }),
            resumed: false,
        }
    }

    #[test]
    fn empty_cache_falls_back_to_baseline() {
        let hub = AdvisorHub::new();
        let cache = ResultCache::open(None).unwrap();
        let shards = shards();
        let shard = &shards["2d-grid"];
        let a = advise(
            &hub,
            &cache,
            &shards,
            shard,
            Scale::Tiny,
            Algorithm::Bfs,
            Model::Cuda,
        );
        assert_eq!(a.advice.method, Method::Baseline);
        assert_eq!(
            a.advice.best(),
            StyleConfig::baseline(Algorithm::Bfs, Model::Cuda).name()
        );
        assert_eq!(a.training_cells, 0);
    }

    #[test]
    fn cached_cells_train_the_advisor_and_the_fit_is_memoized() {
        let hub = AdvisorHub::new();
        let cache = ResultCache::open(None).unwrap();
        let shards = shards();
        // Two measured variants on 2d-grid: the slower baseline and a
        // faster alternative — the advisor must rank the faster one first.
        let variants = indigo_styles::enumerate::variants(Algorithm::Bfs, Model::Cuda);
        let baseline = StyleConfig::baseline(Algorithm::Bfs, Model::Cuda);
        let other = variants
            .iter()
            .find(|c| c.name() != baseline.name())
            .unwrap();
        cache.insert(&ok_record(&baseline, "2d-grid", 1.0)).unwrap();
        cache.insert(&ok_record(other, "2d-grid", 5.0)).unwrap();

        let shard = &shards["2d-grid"];
        let a = advise(
            &hub,
            &cache,
            &shards,
            shard,
            Scale::Tiny,
            Algorithm::Bfs,
            Model::Cuda,
        );
        assert_eq!(a.advice.method, Method::NearestNeighbor);
        assert_eq!(a.advice.best(), other.name());
        assert_eq!(a.training_cells, 2);
        assert_eq!(a.training_graphs, 1);

        // Same generation → the memoized advisor is reused (same Arc).
        let first = hub.advisor(&cache, &shards, Scale::Tiny);
        let again = hub.advisor(&cache, &shards, Scale::Tiny);
        assert!(Arc::ptr_eq(&first, &again));

        // A new cell bumps the generation and triggers a refit.
        let third = variants
            .iter()
            .find(|c| c.name() != baseline.name() && c.name() != other.name())
            .unwrap();
        cache.insert(&ok_record(third, "rmat", 2.0)).unwrap();
        let refit = hub.advisor(&cache, &shards, Scale::Tiny);
        assert!(!Arc::ptr_eq(&first, &refit));
        assert_eq!(refit.num_graphs(), 2);
    }

    #[test]
    fn features_are_memoized_per_graph_and_scale() {
        let hub = AdvisorHub::new();
        let shards = shards();
        let shard = &shards[SuiteGraph::Rmat.label()];
        let f1 = hub.features(shard, Scale::Tiny);
        let f2 = hub.features(shard, Scale::Tiny);
        assert_eq!(f1, f2);
        assert!(f1.get("nodes").unwrap() > 0.0);
    }
}
