//! Pre-registered, allocation-free gauges.
//!
//! Same registration model as [`crate::counter`]: every gauge is a
//! [`Gauge`] variant indexing static atomic storage. Unlike counters,
//! gauges are point-in-time levels (queue depth, live flights) that move
//! both ways, so they are signed, unsharded (`set` is a plain store, and
//! the write rates are per-request, not per-edge), and expose `set`/`add`
//! rather than monotonic increments.
//!
//! Recording compiles to nothing without the `telemetry` feature; reads
//! always compile and return 0 in disabled builds, so the `/metrics`
//! renderer can unconditionally include the gauge family.

#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicI64, Ordering};

/// Number of registered gauges (kept in sync with [`Gauge::ALL`]).
pub const NUM_GAUGES: usize = 4;

/// Every gauge in the workspace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Current admission-queue depth (jobs waiting for a worker).
    ServeQueueDepth,
    /// Cells currently in flight in the single-flight registry.
    ServeLiveFlights,
    /// Keep-alive connections currently parked in the epoll reactor.
    ServeParkedConns,
    /// Circuit breakers currently open (degraded shards).
    ServeOpenBreakers,
}

impl Gauge {
    /// Every gauge, in storage order.
    pub const ALL: [Gauge; NUM_GAUGES] = [
        Gauge::ServeQueueDepth,
        Gauge::ServeLiveFlights,
        Gauge::ServeParkedConns,
        Gauge::ServeOpenBreakers,
    ];

    /// Stable machine name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Gauge::ServeQueueDepth => "serve.queue_depth_now",
            Gauge::ServeLiveFlights => "serve.live_flights",
            Gauge::ServeParkedConns => "serve.parked_conns",
            Gauge::ServeOpenBreakers => "serve.open_breakers",
        }
    }

    /// Sets the level. Compiles to nothing without `telemetry`.
    #[inline(always)]
    pub fn set(self, v: i64) {
        #[cfg(feature = "telemetry")]
        storage::LEVELS[self as usize].store(v, Ordering::Relaxed);
        #[cfg(not(feature = "telemetry"))]
        let _ = v;
    }

    /// Moves the level by `delta` (negative to decrement).
    #[inline(always)]
    pub fn add(self, delta: i64) {
        #[cfg(feature = "telemetry")]
        storage::LEVELS[self as usize].fetch_add(delta, Ordering::Relaxed);
        #[cfg(not(feature = "telemetry"))]
        let _ = delta;
    }

    /// Current level; always 0 without `telemetry`.
    #[must_use]
    pub fn get(self) -> i64 {
        #[cfg(feature = "telemetry")]
        {
            storage::LEVELS[self as usize].load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            0
        }
    }
}

#[cfg(feature = "telemetry")]
mod storage {
    use super::{AtomicI64, NUM_GAUGES};

    #[allow(clippy::declare_interior_mutable_const)]
    const Z: AtomicI64 = AtomicI64::new(0);
    pub(super) static LEVELS: [AtomicI64; NUM_GAUGES] = [Z; NUM_GAUGES];
}

/// A point-in-time copy of every gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeSnapshot {
    values: [i64; NUM_GAUGES],
}

impl GaugeSnapshot {
    /// Value of one gauge.
    #[must_use]
    pub fn get(&self, g: Gauge) -> i64 {
        self.values[g as usize]
    }
}

/// Snapshots every gauge (all zeros without `telemetry`).
#[must_use]
pub fn gauges_snapshot() -> GaugeSnapshot {
    let mut values = [0i64; NUM_GAUGES];
    for (i, v) in values.iter_mut().enumerate() {
        *v = Gauge::ALL[i].get();
    }
    GaugeSnapshot { values }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Same sync contract as `Counter`: `ALL` order, `NUM_GAUGES`, and the
    /// name table move together or `/metrics` mislabels the family.
    #[test]
    fn all_num_gauges_and_name_table_stay_in_sync() {
        assert_eq!(Gauge::ALL.len(), NUM_GAUGES);
        let mut names: Vec<&str> = Gauge::ALL.iter().map(|g| g.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_GAUGES);
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i, "storage order mismatch for {g:?}");
            assert!(g
                .name()
                .chars()
                .all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit() || "._".contains(ch)));
        }
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn disabled_build_records_nothing() {
        Gauge::ServeQueueDepth.set(7);
        Gauge::ServeQueueDepth.add(3);
        assert_eq!(Gauge::ServeQueueDepth.get(), 0);
        assert_eq!(gauges_snapshot().get(Gauge::ServeQueueDepth), 0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn set_add_and_snapshot_are_coherent() {
        // gauge storage is process-global; this test owns ServeOpenBreakers
        Gauge::ServeOpenBreakers.set(2);
        Gauge::ServeOpenBreakers.add(3);
        Gauge::ServeOpenBreakers.add(-1);
        assert_eq!(Gauge::ServeOpenBreakers.get(), 4);
        assert_eq!(gauges_snapshot().get(Gauge::ServeOpenBreakers), 4);
        Gauge::ServeOpenBreakers.set(0);
    }
}
