//! # indigo2 — meta-crate
//!
//! Re-exports the public API of the indigo-rs workspace, the Rust
//! reproduction of *"Choosing the Best Parallelization and Implementation
//! Styles for Graph Analytics Codes"* (SC '23). See the README for the
//! architecture overview and DESIGN.md for the per-experiment index.
//!
//! ```
//! use indigo2::{graph::gen, styles::{Algorithm, Model, StyleConfig}};
//!
//! let g = gen::grid2d(8, 8);
//! let cfg = StyleConfig::baseline(Algorithm::Bfs, Model::Cpp);
//! assert!(cfg.check().is_ok());
//! assert_eq!(g.num_nodes(), 64);
//! ```

pub use indigo_baselines as baselines;
pub use indigo_core as core;
pub use indigo_exec as exec;
pub use indigo_gpusim as gpusim;
pub use indigo_graph as graph;
pub use indigo_harness as harness;
pub use indigo_styles as styles;
