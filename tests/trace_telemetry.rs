//! Tier-2: the observability subsystem's trace pipeline (DESIGN.md §7.5).
//!
//! Pins the three properties the telemetry design promises:
//!
//! * the trace wire format round-trips and a torn tail (killed run) costs
//!   exactly the torn line — `load_trace` skips it and counts it;
//! * the chrome://tracing export is a loadable Trace Event Format array
//!   with spans as `"ph": "X"` and instants as `"ph": "i"`;
//! * with the `telemetry` feature off (the default build), the whole
//!   subsystem is inert: no counters, no files, `install_trace` declines.
//!
//! The live-sink test runs only under `--features telemetry`; CI runs this
//! file in both configurations.

use std::path::PathBuf;

use indigo_obs::chrome::to_chrome_json;
use indigo_obs::{load_trace, validate_line, TraceEvent};

/// Fresh per-test scratch dir (tests run concurrently in one process).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("indigo-trace-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn trace_jsonl_survives_torn_tail_and_garbage() {
    let dir = scratch("torn");
    let path = dir.join("TRACE_test.jsonl");

    let start = TraceEvent::instant("run-start", "smoke", 0)
        .with_arg("jobs", "2")
        .to_json_line();
    let phase = TraceEvent::span("phase", "gpu-sim", 10, 5_000)
        .with_arg("cells", "104")
        .to_json_line();
    let cell = TraceEvent::span("cell", "bfs-cuda|rmat16|gpu-sim", 20, 900)
        .with_tid(1)
        .with_arg("outcome", "ok")
        .to_json_line();
    let alien = TraceEvent::instant("martian", "x", 5).to_json_line(); // unknown kind
    let torn = &cell[..cell.len() - 11]; // killed mid-write

    std::fs::write(
        &path,
        format!("{start}\n{phase}\n{cell}\n{alien}\n\n{torn}"),
    )
    .unwrap();

    let (events, skipped) = load_trace(&path).unwrap();
    assert_eq!(events.len(), 3, "three well-formed events survive");
    assert_eq!(
        skipped, 2,
        "unknown kind + torn tail are skipped, not fatal"
    );
    assert_eq!(events[0].kind, "run-start");
    assert_eq!(events[2].arg("outcome"), Some("ok"));
    assert_eq!(events[2].tid, 1);

    // every surviving event re-validates from its own wire form
    for ev in &events {
        assert_eq!(&validate_line(&ev.to_json_line()).unwrap(), ev);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chrome_export_is_a_loadable_trace_event_array() {
    let events = vec![
        TraceEvent::instant("run-start", "smoke", 0).with_arg("jobs", "2"),
        TraceEvent::span("phase", "gpu-sim", 10, 5_000).with_arg("cells", "104"),
        TraceEvent::span("cell", "bfs-cuda|rmat16|gpu-sim", 20, 900).with_tid(3),
        TraceEvent::instant("watchdog-fire", "cc-omp|road|cpu", 4_000),
    ];
    let json = to_chrome_json(&events);

    assert!(json.starts_with("[\n") && json.trim_end().ends_with(']'));
    assert!(json.contains("\"process_name\""), "metadata event present");
    // spans → complete events, instants → thread-scoped instants
    assert_eq!(json.matches("\"ph\": \"X\"").count(), 2);
    assert_eq!(json.matches("\"ph\": \"i\", \"s\": \"t\"").count(), 2);
    assert!(json.contains("\"ts\": 10, \"dur\": 5000"));
    assert!(json.contains("\"cat\": \"watchdog-fire\""));
    assert!(json.contains("\"tid\": 3"));
    // flat structure sanity: one object per line, comma-separated
    let body: Vec<&str> = json.lines().filter(|l| l.starts_with('{')).collect();
    assert_eq!(body.len(), 1 + events.len());
}

#[cfg(not(feature = "telemetry"))]
mod disabled {
    use super::*;
    use indigo_obs::{
        counters_snapshot, hists_snapshot, install_trace, trace_installed, Counter, Hist,
    };

    #[test]
    fn default_build_records_nothing_and_writes_nothing() {
        assert!(!indigo_obs::enabled());

        // metric recording is compiled out
        Counter::SimLaunches.add(10);
        Hist::CellMicros.record(123);
        assert!(counters_snapshot().is_zero());
        assert_eq!(hists_snapshot().count(Hist::CellMicros), 0);

        // the sink declines politely and never touches the filesystem
        let dir = scratch("off");
        let path = dir.join("TRACE_off.jsonl");
        assert!(!install_trace(&path).unwrap());
        assert!(!trace_installed());
        indigo_obs::emit(&TraceEvent::instant("run-start", "x", 0));
        assert!(!path.exists(), "telemetry-off build created a trace file");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(feature = "telemetry")]
mod live {
    use super::*;
    use indigo_obs::{emit, install_trace, now_micros, trace_installed};

    // The trace sink is process-global (OnceLock), so everything touching
    // it lives in this ONE test function.
    #[test]
    fn live_sink_appends_whole_lines_past_a_torn_predecessor() {
        let dir = scratch("live");
        let path = dir.join("TRACE_live.jsonl");

        // simulate a previous run killed mid-line: no trailing newline
        std::fs::write(&path, "{\"v\": 1, \"ts\": 3, \"du").unwrap();

        assert!(install_trace(&path).unwrap(), "first install wins");
        assert!(trace_installed());
        assert!(
            !install_trace(&path).unwrap(),
            "second install declines instead of clobbering"
        );

        let t0 = now_micros();
        emit(&TraceEvent::instant("run-start", "live-test", t0).with_arg("jobs", "1"));
        emit(
            &TraceEvent::span("phase", "gpu-sim", t0, 42)
                .with_arg("cells", "7")
                .with_tid(2),
        );

        let (events, skipped) = load_trace(&path).unwrap();
        assert_eq!(skipped, 1, "only the pre-existing torn line is lost");
        assert_eq!(events.len(), 2, "the newline guard kept our events whole");
        assert_eq!(events[0].kind, "run-start");
        assert_eq!(events[0].arg("jobs"), Some("1"));
        assert_eq!(events[1].dur_us, 42);
        assert_eq!(events[1].tid, 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
