//! # indigo-cancel
//!
//! The cooperative cancellation protocol of the fault-tolerant measurement
//! harness (DESIGN.md §7.3).
//!
//! A measurement cell that wedges — a non-converging worklist kernel, a
//! pathological style combination, an injected stall — cannot be killed
//! preemptively without corrupting shared state (persistent worker pools,
//! the simulator's block slots). Instead, every long-running loop in the
//! stack checks a [`CancelToken`] at its natural boundaries: the simulator
//! before each kernel launch and each persistent-kernel round, the CPU pools
//! between scheduling chunks, the harness between repetitions. A watchdog
//! that decides a cell is over budget *fires* the token; the next checkpoint
//! raises a [`Cancelled`] panic payload, which unwinds the cell cleanly to
//! the harness's isolation boundary where it is recorded as a structured
//! `TimedOut` outcome rather than a crash.
//!
//! The protocol has two halves with different blame assignments:
//!
//! * [`CancelToken::fire`] + [`CancelToken::checkpoint`] — asynchronous
//!   cancellation. `checkpoint` is a single relaxed atomic load on the fast
//!   path, cheap enough for per-chunk checks.
//! * [`Cancelled`] — the panic payload. Harness code classifies an unwind by
//!   downcasting: a `Cancelled` payload means "budget exceeded", anything
//!   else means "the cell crashed".

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The panic payload raised by [`CancelToken::checkpoint`] once the token
/// has fired. Catching code downcasts to this type to tell a cooperative
/// cancellation apart from a genuine crash.
#[derive(Clone, Debug)]
pub struct Cancelled {
    /// Why the token fired (e.g. `"wall-clock budget of 5s exceeded"`).
    pub reason: String,
}

struct Inner {
    fired: AtomicBool,
    reason: Mutex<Option<String>>,
}

/// A shared, cloneable cancellation flag.
///
/// Cloning is cheap (one `Arc`); all clones observe the same fire state.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                fired: AtomicBool::new(false),
                reason: Mutex::new(None),
            }),
        }
    }

    /// Fires the token. The first caller's `reason` wins; later calls are
    /// no-ops, so a watchdog and a budget check cannot race into two
    /// different reasons.
    pub fn fire(&self, reason: impl Into<String>) {
        let mut slot = self.inner.reason.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(reason.into());
        }
        drop(slot);
        self.inner.fired.store(true, Ordering::Release);
    }

    /// Whether the token has fired. One relaxed atomic load — safe to call
    /// in tight scheduling loops.
    #[inline]
    pub fn is_fired(&self) -> bool {
        self.inner.fired.load(Ordering::Relaxed)
    }

    /// The fire reason, if fired.
    pub fn reason(&self) -> Option<String> {
        self.inner
            .reason
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Raises a [`Cancelled`] panic if the token has fired; otherwise a
    /// single atomic load. This is the cancellation point — call it at
    /// launch/iteration boundaries where unwinding leaves no shared state
    /// half-mutated.
    #[inline]
    pub fn checkpoint(&self) {
        if self.is_fired() {
            self.raise();
        }
    }

    /// Unconditionally raises the [`Cancelled`] payload (the cold path of
    /// [`CancelToken::checkpoint`]).
    #[cold]
    pub fn raise(&self) -> ! {
        std::panic::panic_any(Cancelled {
            reason: self
                .reason()
                .unwrap_or_else(|| "cancelled without a reason".to_string()),
        })
    }
}

/// Extracts the [`Cancelled`] payload from a caught unwind, if that is what
/// it was.
pub fn as_cancelled(payload: &(dyn std::any::Any + Send)) -> Option<&Cancelled> {
    payload.downcast_ref::<Cancelled>()
}

/// Renders any panic payload as human-readable text: `Cancelled` reasons and
/// the two string payload flavors verbatim, anything else as a placeholder.
pub fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(c) = as_cancelled(payload) {
        return c.reason.clone();
    }
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        return (*s).to_string();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    "non-string panic payload".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_unfired_and_checkpoint_is_a_noop() {
        let t = CancelToken::new();
        assert!(!t.is_fired());
        assert!(t.reason().is_none());
        t.checkpoint(); // must not panic
    }

    #[test]
    fn fire_then_checkpoint_raises_cancelled_with_reason() {
        let t = CancelToken::new();
        t.fire("budget exceeded");
        assert!(t.is_fired());
        let err = std::panic::catch_unwind(|| t.checkpoint()).unwrap_err();
        let c = as_cancelled(err.as_ref()).expect("payload is Cancelled");
        assert_eq!(c.reason, "budget exceeded");
    }

    #[test]
    fn first_fire_reason_wins() {
        let t = CancelToken::new();
        t.fire("first");
        t.fire("second");
        assert_eq!(t.reason().as_deref(), Some("first"));
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        t.fire("shared");
        assert!(u.is_fired());
        assert_eq!(u.reason().as_deref(), Some("shared"));
    }

    #[test]
    fn payload_text_renders_all_flavors() {
        let cancelled = std::panic::catch_unwind(|| {
            let t = CancelToken::new();
            t.fire("slow");
            t.checkpoint();
        })
        .unwrap_err();
        assert_eq!(payload_text(cancelled.as_ref()), "slow");

        let s = std::panic::catch_unwind(|| panic!("plain")).unwrap_err();
        assert_eq!(payload_text(s.as_ref()), "plain");

        let owned = std::panic::catch_unwind(|| panic!("{}", "formatted")).unwrap_err();
        assert_eq!(payload_text(owned.as_ref()), "formatted");
    }

    #[test]
    fn cross_thread_fire_is_observed() {
        let t = CancelToken::new();
        let u = t.clone();
        std::thread::spawn(move || u.fire("from watchdog"))
            .join()
            .unwrap();
        assert!(t.is_fired());
    }
}
