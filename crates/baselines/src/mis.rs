//! Optimized CPU maximal independent set (Lonestar-style priority MIS).
//!
//! Single fused kernel per round over the still-undecided vertices, kept in
//! a compact host-side worklist; neighbor scans short-circuit at the first
//! better undecided neighbor. Computes the same lexicographically-first-by-
//! priority set as the suite's variants. The paper has no GPU baseline for
//! MIS (it is missing from Gardenia, §5.17), so neither do we.

use indigo_core::serial::mis_priority;
use indigo_core::GraphInput;
use indigo_exec::Schedule;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

const UNDECIDED: u32 = 0;
const IN: u32 = 1;
const OUT: u32 = 2;

/// CPU priority MIS. Returns `(membership, seconds)`.
pub fn cpu(input: &GraphInput, threads: usize) -> (Vec<bool>, f64) {
    let g = &input.csr;
    let n = g.num_nodes();
    let pool = crate::pool(threads);
    let seed = indigo_core::MIS_SEED;
    let start = std::time::Instant::now();
    let status: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNDECIDED)).collect();
    // priorities are precomputed — the baseline's memo over the suite codes
    let prio: Vec<u64> = (0..n as u32).map(|v| mis_priority(v, seed)).collect();

    let mut live: Vec<u32> = (0..n as u32).collect();
    while !live.is_empty() {
        let next: Vec<AtomicU32> = (0..live.len()).map(|_| AtomicU32::new(0)).collect();
        let next_len = AtomicUsize::new(0);
        let live_ref = &live;
        pool.parallel_for(live.len(), Schedule::Default, |li, _| {
            let v = live_ref[li];
            if status[v as usize].load(Ordering::Relaxed) != UNDECIDED {
                return;
            }
            let pv = prio[v as usize];
            let mut wins = true;
            for &u in g.neighbors(v) {
                let su = status[u as usize].load(Ordering::Relaxed);
                if su == IN || (su == UNDECIDED && prio[u as usize] > pv) {
                    wins = false;
                    break;
                }
            }
            if wins {
                status[v as usize].store(IN, Ordering::Relaxed);
                for &u in g.neighbors(v) {
                    status[u as usize].store(OUT, Ordering::Relaxed);
                }
            } else {
                let slot = next_len.fetch_add(1, Ordering::Relaxed);
                next[slot].store(v, Ordering::Relaxed);
            }
        });
        let len = next_len.load(Ordering::Relaxed);
        live = next[..len]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .filter(|&v| status[v as usize].load(Ordering::Relaxed) == UNDECIDED)
            .collect();
    }
    let set = (0..n)
        .map(|i| status[i].load(Ordering::Relaxed) == IN)
        .collect();
    (set, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use indigo_core::serial;
    use indigo_graph::gen::{self, toy};

    #[test]
    fn matches_serial_greedy_set() {
        for g in [
            toy::complete(9),
            toy::star(20),
            gen::gnp(250, 0.03, 11),
            gen::grid2d(8, 8),
        ] {
            let input = GraphInput::new(g);
            let expect = serial::mis(&input.csr, indigo_core::MIS_SEED);
            let (got, _) = cpu(&input, 3);
            assert_eq!(got, expect, "{}", input.name());
        }
    }

    #[test]
    fn empty_graph() {
        let input = GraphInput::new(indigo_graph::Csr::from_raw(vec![0], vec![], vec![], "e"));
        assert!(cpu(&input, 2).0.is_empty());
    }
}
