//! Deterministic simulator perf probe (DESIGN.md §7.4, §7.5).
//!
//! Runs a fixed set of simulator workloads and reports, per workload, the
//! **telemetry counter deltas** over the steady-state window (the probe
//! requires a `--features telemetry` build and refuses to run without it):
//!
//! * `sim_cycles` — simulated cycles (`sim.cycles`, bit-deterministic),
//! * `accesses`   — recorded memory accesses (`sim.global_accesses`),
//! * `coalesced_txns` / `uncoalesced_txns` — warp-step memory transaction
//!   split from the coalescing model,
//! * `atomic_ops` / `atomic_conflicts` — priced atomics and the same-address
//!   collisions among them,
//! * `steady_allocs` — heap allocations performed *after* the first
//!   warm-up launch (deterministic: the zero-allocation hot path makes
//!   this exactly 0; counted by a local `#[global_allocator]`, not obs),
//! * `host_ns_per_access` — host nanoseconds per simulated access
//!   (informational only; never compared, it is wall-clock).
//!
//! `gpusim_perf` prints the JSON record to stdout. With
//! `--check <baseline.json>` it instead compares the deterministic fields
//! against a committed baseline: any relative deviation above 10% warns,
//! above 30% exits nonzero — a flake-free CI perf gate (wall-clock is
//! deliberately excluded).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use indigo_gpusim::{rtx3090, Assign, BufKind, GpuBuf, ReduceStyle, Sim, WARP_SIZE};
use indigo_obs::{counters_snapshot, Counter};

/// Counting allocator: every allocation path bumps one relaxed counter.
struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(l)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(p, l, n)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(l)
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

struct Record {
    name: &'static str,
    sim_cycles: f64,
    accesses: u64,
    coalesced_txns: u64,
    uncoalesced_txns: u64,
    atomic_ops: u64,
    atomic_conflicts: u64,
    steady_allocs: u64,
    host_ns_per_access: f64,
}

/// Runs `launches` identical launches; the first is warm-up, the rest are
/// the steady-state window the allocation and obs counters observe. The
/// deterministic fields are obs counter deltas: workloads run one at a
/// time, so the process-global counters attribute exactly.
fn probe(
    name: &'static str,
    mut sim: Sim,
    launches: usize,
    mut one: impl FnMut(&mut Sim),
) -> Record {
    // warm-up: tables grow, pools spawn, arenas size up; the second round
    // flushes one-time lazy initialization in std (thread parking, panic
    // machinery) that is not part of the launch path proper
    one(&mut sim);
    one(&mut sim);
    let before = counters_snapshot();
    let allocs0 = ALLOCS.load(Ordering::Relaxed);
    let start = Instant::now();
    for _ in 1..launches {
        one(&mut sim);
    }
    let host = start.elapsed();
    let steady_allocs = ALLOCS.load(Ordering::Relaxed) - allocs0;
    let delta = counters_snapshot().delta_since(&before);
    let accesses = delta.get(Counter::SimGlobalAccesses);
    Record {
        name,
        sim_cycles: delta.get(Counter::SimCycles) as f64,
        accesses,
        coalesced_txns: delta.get(Counter::SimCoalescedTxns),
        uncoalesced_txns: delta.get(Counter::SimUncoalescedTxns),
        atomic_ops: delta.get(Counter::SimAtomicOps),
        atomic_conflicts: delta.get(Counter::SimAtomicConflicts),
        steady_allocs,
        host_ns_per_access: host.as_nanos() as f64 / accesses.max(1) as f64,
    }
}

fn workloads() -> Vec<Record> {
    let device = rtx3090();
    let mut out = Vec::new();

    // 1. thread-granularity streaming launch: the fast path
    {
        const N: usize = 1 << 14;
        let src = GpuBuf::new(N, 7);
        let dst = GpuBuf::new(N, 0);
        out.push(probe("thread_stream", Sim::new(device), 64, move |sim| {
            sim.launch(N, Assign::ThreadPerItem, false, |ctx, i| {
                let v = ctx.ld(&src, i);
                ctx.st(&dst, i, v + 1);
            });
        }));
    }

    // 2. warp-granularity shuffle reduction: the generic block path
    {
        const ITEMS: usize = 1 << 10;
        let src = GpuBuf::new(ITEMS * WARP_SIZE, 1);
        out.push(probe("warp_reduce", Sim::new(device), 64, move |sim| {
            sim.launch_reduce_u64(
                ITEMS,
                Assign::WarpPerItem,
                false,
                ReduceStyle::ReductionAdd,
                BufKind::Atomic,
                |ctx, item| {
                    let v = ctx.ld(&src, item * WARP_SIZE + ctx.lane());
                    ctx.reduce_add_u64(u64::from(v));
                },
            );
        }));
    }

    // 3. pooled deterministic launch: parked workers + slot arena
    {
        const N: usize = 1 << 14;
        let src = GpuBuf::new(N, 3);
        let dst = GpuBuf::new(N, 0);
        let mut sim = Sim::new(device);
        sim.set_workers(2);
        out.push(probe("thread_stream_pooled", sim, 64, move |sim| {
            sim.launch_det(N, Assign::ThreadPerItem, false, |ctx, i| {
                let v = ctx.ld(&src, i);
                ctx.st(&dst, i, v * 2);
            });
        }));
    }

    // 4. scattered classic atomics: the dedup fallback in finalize
    {
        const N: usize = 1 << 12;
        let hist = GpuBuf::new(257, 0).with_kind(BufKind::Atomic);
        out.push(probe("scatter_atomics", Sim::new(device), 64, move |sim| {
            sim.launch(N, Assign::ThreadPerItem, false, |ctx, i| {
                // multiplicative hash scatters lanes across the histogram
                let slot = (i.wrapping_mul(2654435761)) % 257;
                ctx.atomic_add(&hist, slot, 1);
            });
        }));
    }

    out
}

fn emit(records: &[Record]) -> String {
    let mut s = String::from("{\n  \"version\": 2,\n  \"workloads\": [\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"sim_cycles\": {:.3}, \"accesses\": {}, \
             \"coalesced_txns\": {}, \"uncoalesced_txns\": {}, \
             \"atomic_ops\": {}, \"atomic_conflicts\": {}, \
             \"steady_allocs\": {}, \"host_ns_per_access\": {:.2}}}{}\n",
            r.name,
            r.sim_cycles,
            r.accesses,
            r.coalesced_txns,
            r.uncoalesced_txns,
            r.atomic_ops,
            r.atomic_conflicts,
            r.steady_allocs,
            r.host_ns_per_access,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Pulls `"field": <number>` off a JSON line. Good enough for the
/// line-per-workload records this tool writes (the workspace is
/// dependency-free, so no serde).
fn field(line: &str, name: &str) -> Option<f64> {
    let tag = format!("\"{name}\": ");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    let end = rest
        .find(|ch: char| !(ch.is_ascii_digit() || ch == '.' || ch == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn name_of(line: &str) -> Option<&str> {
    let at = line.find("\"name\": \"")? + 9;
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

/// Compares deterministic fields against the baseline file. Returns the
/// number of hard failures (relative deviation > 30%, or any steady-state
/// allocation where the baseline had none).
fn check(records: &[Record], baseline_path: &str) -> usize {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gpusim_perf: cannot read baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let mut failures = 0;
    for r in records {
        let Some(line) = baseline.lines().find(|l| name_of(l) == Some(r.name)) else {
            eprintln!("WARN  {}: not in baseline (new workload?)", r.name);
            continue;
        };
        let mut compare = |what: &str, old: f64, new: f64| {
            if old == 0.0 {
                if new != 0.0 {
                    eprintln!("FAIL  {}: {what} was 0, now {new}", r.name);
                    failures += 1;
                }
                return;
            }
            let dev = (new - old).abs() / old;
            if dev > 0.30 {
                eprintln!(
                    "FAIL  {}: {what} deviates {:.1}% (baseline {old}, now {new})",
                    r.name,
                    dev * 100.0
                );
                failures += 1;
            } else if dev > 0.10 {
                eprintln!(
                    "WARN  {}: {what} deviates {:.1}% (baseline {old}, now {new})",
                    r.name,
                    dev * 100.0
                );
            }
        };
        if let Some(old) = field(line, "sim_cycles") {
            compare("sim_cycles", old, r.sim_cycles);
        }
        if let Some(old) = field(line, "accesses") {
            compare("accesses", old, r.accesses as f64);
        }
        // the coalescing/atomic splits are bit-deterministic too; older
        // baselines without them are simply not compared on those fields
        if let Some(old) = field(line, "coalesced_txns") {
            compare("coalesced_txns", old, r.coalesced_txns as f64);
        }
        if let Some(old) = field(line, "uncoalesced_txns") {
            compare("uncoalesced_txns", old, r.uncoalesced_txns as f64);
        }
        if let Some(old) = field(line, "atomic_ops") {
            compare("atomic_ops", old, r.atomic_ops as f64);
        }
        if let Some(old) = field(line, "atomic_conflicts") {
            compare("atomic_conflicts", old, r.atomic_conflicts as f64);
        }
        if let Some(old) = field(line, "steady_allocs") {
            // a pooled worker's private StepTable may grow on its first
            // real engagement, which lands inside the steady window or not
            // depending on scheduling — ignore that noise floor and gate
            // only real per-launch allocation regressions
            if (r.steady_allocs as f64 - old).abs() > 2.0 {
                compare("steady_allocs", old, r.steady_allocs as f64);
            }
        }
    }
    failures
}

fn main() {
    if !indigo_obs::enabled() {
        eprintln!(
            "gpusim_perf: this probe reads telemetry counter deltas; \
             rebuild with `--features telemetry`"
        );
        std::process::exit(1);
    }
    let args: Vec<String> = std::env::args().collect();
    let records = workloads();
    match args.get(1).map(String::as_str) {
        None => print!("{}", emit(&records)),
        Some("--check") => {
            let Some(baseline) = args.get(2) else {
                eprintln!("usage: gpusim_perf [--check baseline.json]");
                std::process::exit(1);
            };
            let failures = check(&records, baseline);
            if failures > 0 {
                eprintln!("gpusim_perf: {failures} perf regression(s) past the 30% gate");
                std::process::exit(2);
            }
            eprintln!("gpusim_perf: deterministic perf within gates");
        }
        Some(other) => {
            eprintln!("gpusim_perf: unknown argument {other}");
            std::process::exit(1);
        }
    }
}
