//! GPU triangle counting (the CUDA analog of [`crate::cpu::tc`]).
//!
//! Counting rule as on the CPU: for every edge `(v, u)` with `v < u`, count
//! common neighbors `w > u`. Granularity applies to the *inner* loop in both
//! directions (which is why the paper's Table 3 gives TC the full 3-way
//! granularity split even edge-based):
//!
//! * vertex-based — lanes stride `adj(v)`; each lane merge-intersects for
//!   its neighbors `u > v`;
//! * edge-based — lanes stride `adj(v)` elements `> u` and binary-search
//!   `adj(u)`.
//!
//! The global count uses the configured §2.10.1 reduction style, and —
//! uniquely among the algorithms (§5.1) — the CudaAtomic style only touches
//! the single counter add, so its penalty is mild.

use super::{assign_of, atomic_kind_of, persistent_of, DeviceGraph};
use indigo_gpusim::{LaneCtx, ReduceStyle, Sim};
use indigo_styles::{Direction, GpuReduction, StyleConfig};

fn reduce_style_of(cfg: &StyleConfig) -> ReduceStyle {
    match cfg
        .gpu_reduction
        .expect("GPU TC variants carry a reduction style")
    {
        GpuReduction::GlobalAdd => ReduceStyle::GlobalAdd,
        GpuReduction::BlockAdd => ReduceStyle::BlockAdd,
        GpuReduction::ReductionAdd => ReduceStyle::ReductionAdd,
    }
}

/// Runs the TC variant `cfg`; returns the triangle count (iterations = 1).
pub fn run(cfg: &StyleConfig, dg: &DeviceGraph, sim: &mut Sim) -> (u64, usize) {
    let assign = assign_of(cfg);
    let persistent = persistent_of(cfg);
    let style = reduce_style_of(cfg);
    let kind = atomic_kind_of(cfg);

    // Both TC directions only read the immutable graph and fold into the
    // u64 reduction, so they carry the deterministic_parallel capability.
    let count = match cfg.direction {
        Direction::VertexBased => {
            sim.launch_reduce_u64_det(dg.n, assign, persistent, style, kind, |ctx, vi| {
                let v = vi as u32;
                let beg = ctx.ld(&dg.row, vi) as usize;
                let end = ctx.ld(&dg.row, vi + 1) as usize;
                let lanes = ctx.lane_count();
                let mut i = beg + ctx.lane();
                let mut local = 0u64;
                while i < end {
                    let u = ctx.ld(&dg.nbr, i);
                    if u > v {
                        local += merge_intersect(ctx, dg, v, u);
                    }
                    i += lanes;
                }
                if local > 0 {
                    ctx.reduce_add_u64(local);
                }
            })
        }
        Direction::EdgeBased => {
            sim.launch_reduce_u64_det(dg.m, assign, persistent, style, kind, |ctx, e| {
                let v = ctx.ld(&dg.src, e);
                let u = ctx.ld(&dg.dst, e);
                if v >= u {
                    return;
                }
                // lanes stride v's neighbors above u, binary-searching u's
                let vbeg = ctx.ld(&dg.row, v as usize) as usize;
                let vend = ctx.ld(&dg.row, v as usize + 1) as usize;
                let ubeg = ctx.ld(&dg.row, u as usize) as usize;
                let uend = ctx.ld(&dg.row, u as usize + 1) as usize;
                let lanes = ctx.lane_count();
                let mut i = vbeg + ctx.lane();
                let mut local = 0u64;
                while i < vend {
                    let w = ctx.ld(&dg.nbr, i);
                    if w > u && bsearch(ctx, dg, ubeg, uend, w) {
                        local += 1;
                    }
                    i += lanes;
                }
                if local > 0 {
                    ctx.reduce_add_u64(local);
                }
            })
        }
    };
    (count, 1)
}

/// Sequential sorted-merge intersection of `adj(v)` and `adj(u)` above `u`
/// (one lane does the whole merge; loads are priced per element).
fn merge_intersect(ctx: &mut LaneCtx, dg: &DeviceGraph, v: u32, u: u32) -> u64 {
    let mut i = ctx.ld(&dg.row, v as usize) as usize;
    let vend = ctx.ld(&dg.row, v as usize + 1) as usize;
    let mut j = ctx.ld(&dg.row, u as usize) as usize;
    let uend = ctx.ld(&dg.row, u as usize + 1) as usize;
    let mut count = 0u64;
    let mut a = None;
    let mut b = None;
    while i < vend && j < uend {
        let av = *a.get_or_insert_with(|| ctx.ld(&dg.nbr, i));
        let bv = *b.get_or_insert_with(|| ctx.ld(&dg.nbr, j));
        match av.cmp(&bv) {
            std::cmp::Ordering::Less => {
                i += 1;
                a = None;
            }
            std::cmp::Ordering::Greater => {
                j += 1;
                b = None;
            }
            std::cmp::Ordering::Equal => {
                if av > u {
                    count += 1;
                }
                i += 1;
                j += 1;
                a = None;
                b = None;
            }
        }
    }
    count
}

/// Binary search for `target` in the sorted `nbr[beg..end]` range.
fn bsearch(ctx: &mut LaneCtx, dg: &DeviceGraph, beg: usize, end: usize, target: u32) -> bool {
    let (mut lo, mut hi) = (beg, end);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let x = ctx.ld(&dg.nbr, mid);
        match x.cmp(&target) {
            std::cmp::Ordering::Equal => return true,
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{serial, GraphInput};
    use indigo_gpusim::rtx3090;
    use indigo_graph::gen::{self, toy};
    use indigo_styles::{enumerate, Algorithm, Model};

    #[test]
    fn all_gpu_tc_variants_match_reference() {
        let graphs = vec![
            toy::complete(8),
            toy::two_triangles(),
            gen::gnp(50, 0.18, 6),
            gen::clique_overlap(120, 2.0, 1),
        ];
        for g in graphs {
            let input = GraphInput::new(g);
            let dg = DeviceGraph::upload(&input);
            let expect = serial::triangles(&input.csr);
            for cfg in enumerate::variants(Algorithm::Tc, Model::Cuda) {
                let mut sim = Sim::new(rtx3090());
                let (got, _) = run(&cfg, &dg, &mut sim);
                assert_eq!(got, expect, "{} on {}", cfg.name(), input.name());
            }
        }
    }

    #[test]
    fn triangle_free() {
        let input = GraphInput::new(gen::grid2d(6, 6));
        let dg = DeviceGraph::upload(&input);
        let cfg = StyleConfig::baseline(Algorithm::Tc, Model::Cuda);
        let mut sim = Sim::new(rtx3090());
        assert_eq!(run(&cfg, &dg, &mut sim).0, 0);
    }
}
