//! Ablation bench: how the reproduced findings depend on the GPU cost
//! model's components (DESIGN.md §6, §8).
//!
//! Each group reruns a finding-defining contrast under one knockout:
//! if the contrast survives the knockout, the finding does not rest on
//! that model component.

use indigo_bench::{bench_gpu_variant, criterion, input};
use indigo_gpusim::ablation;
use indigo_gpusim::titan_v;
use indigo_graph::gen::SuiteGraph;
use indigo_styles::{Algorithm, GpuReduction, Granularity, Model, StyleConfig};

fn main() {
    let mut c = criterion();
    let soc = input(SuiteGraph::SocialNetwork);
    let cop = input(SuiteGraph::CoPapers);

    let devices = [
        ("base", titan_v()),
        ("no-coalescing", ablation::no_coalescing(titan_v())),
        (
            "no-atomic-contention",
            ablation::no_atomic_contention(titan_v()),
        ),
        ("no-latency-hiding", ablation::no_latency_hiding(titan_v())),
        ("free-launches", ablation::free_launches(titan_v())),
    ];

    // finding 1 (Fig 9): warp beats thread on skewed graphs
    for (abl, device) in devices {
        for gran in [Granularity::Thread, Granularity::Warp] {
            let mut cfg = StyleConfig::baseline(Algorithm::Bfs, Model::Cuda);
            cfg.granularity = Some(gran);
            bench_gpu_variant(
                &mut c,
                "ablation_granularity",
                &format!("{abl}/bfs/{}", gran.label()),
                &cfg,
                &soc,
                device,
            );
        }
    }

    // finding 2 (Fig 10): reduction-add beats global-add beats block-add
    for (abl, device) in devices {
        for red in GpuReduction::ALL {
            let mut cfg = StyleConfig::baseline(Algorithm::Pr, Model::Cuda);
            cfg.gpu_reduction = Some(red);
            bench_gpu_variant(
                &mut c,
                "ablation_reductions",
                &format!("{abl}/pr/{}", red.label()),
                &cfg,
                &cop,
                device,
            );
        }
    }
    c.final_summary();
}
