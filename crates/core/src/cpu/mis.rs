//! CPU maximal independent set in every applicable style.
//!
//! Priority-greedy (Luby-with-fixed-priorities) MIS: every vertex gets a
//! deterministic random priority; an undecided vertex whose priority beats
//! all of its undecided neighbors joins the set, excluding those neighbors.
//! With a fixed priority order this converges to the *unique*
//! lexicographically-first MIS, so every style variant — and the serial
//! reference — computes the same set, which is how the suite verifies MIS.
//!
//! Styles:
//! * **push** — a winning vertex marks its neighbors `Out` (writes to
//!   neighbors);
//! * **pull** — a vertex inspects its neighbors and marks *itself* `Out`
//!   when it sees an `In` neighbor (single writer per vertex);
//! * **vertex-based** — one kernel does the priority scan and decision;
//! * **edge-based** — a per-edge kernel records "has a better undecided
//!   neighbor" stamps and propagates `Out`, followed by a small per-vertex
//!   decision kernel (the natural way to write edge-centric MIS);
//! * **data-driven (no duplicates)** — a worklist of still-undecided
//!   vertices/edges, stamped per §2.3;
//! * **deterministic** — double-buffered status array (§2.6).

use super::CpuExec;
use crate::serial::mis_priority;
use indigo_exec::sync::atomic_vec;
use indigo_exec::worklist::{lease_double_worklist, lease_stamps};
use indigo_graph::NodeId;
use indigo_styles::{Determinism, Direction, Flow, StyleConfig};
use std::sync::atomic::{AtomicU32, Ordering};

const UNDECIDED: u32 = 0;
const IN: u32 = 1;
const OUT: u32 = 2;

/// Runs the MIS variant `cfg`; returns membership flags and iteration count.
pub fn run(cfg: &StyleConfig, input: &crate::GraphInput, exec: &CpuExec) -> (Vec<bool>, usize) {
    let n = input.num_nodes();
    let csr = &input.csr;
    let coo = &input.coo;
    let flow = cfg.flow.expect("MIS has push and pull variants");
    let det = cfg.determinism == Determinism::Deterministic;
    let edge_based = cfg.direction == Direction::EdgeBased;
    let data_driven = cfg.drive.is_data_driven();
    let seed = crate::MIS_SEED;
    // stamp maxes go through the critical section in the Omp model
    let stamp_ops = exec.min_ops(cfg.update);

    let status = atomic_vec(n, UNDECIDED);
    let status_read = det.then(|| atomic_vec(n, UNDECIDED));
    // per-iteration "has a better undecided neighbor" stamps (edge style)
    let blocked = edge_based.then(|| atomic_vec(n, 0));

    let items_total = if edge_based { coo.num_edges() } else { n };
    // leased, not allocated — see cpu/relax.rs for the rationale
    let wl = data_driven.then(|| {
        let dw = lease_double_worklist(items_total + 1);
        for item in 0..items_total {
            dw.current().push(item as u32);
        }
        (dw, lease_stamps(items_total))
    });
    let critical = exec.critical_stamps();

    let mut iterations = 0u32;
    loop {
        iterations += 1;
        let rd: &[AtomicU32] = status_read.as_deref().unwrap_or(&status);

        // Priority comparison against the *read* view: v loses if some
        // undecided neighbor has higher (priority, id).
        let beats = |v: NodeId, u: NodeId| mis_priority(v, seed) > mis_priority(u, seed);

        if edge_based {
            let blocked = blocked.as_ref().unwrap();
            // kernel A: per-edge blocking + Out propagation
            let edge_body = |e: usize| {
                let (v, u) = (coo.src(e), coo.dst(e));
                let sv = rd[v as usize].load(Ordering::Relaxed);
                let su = rd[u as usize].load(Ordering::Relaxed);
                match flow {
                    Flow::Push => {
                        if sv == IN && su == UNDECIDED {
                            status[u as usize].store(OUT, Ordering::Relaxed);
                        }
                    }
                    Flow::Pull => {
                        if su == IN && sv == UNDECIDED {
                            status[v as usize].store(OUT, Ordering::Relaxed);
                        }
                    }
                }
                if sv == UNDECIDED && su == UNDECIDED && beats(u, v) {
                    stamp_ops.max_update(&blocked[v as usize], iterations);
                }
            };
            match &wl {
                Some((dw, stamps)) => {
                    let current = dw.current();
                    exec.pfor(current.len(), |idx, _| edge_body(current.get(idx) as usize));
                    // repopulate: edges with any undecided endpoint stay live
                    let iter = iterations;
                    exec.pfor(current.len(), |idx, _| {
                        let e = current.get(idx) as usize;
                        let (v, u) = (coo.src(e), coo.dst(e));
                        if (status[v as usize].load(Ordering::Relaxed) == UNDECIDED
                            || status[u as usize].load(Ordering::Relaxed) == UNDECIDED)
                            && stamps.try_claim(e as u32, iter, critical)
                        {
                            dw.next().push(e as u32);
                        }
                    });
                }
                None => exec.pfor(coo.num_edges(), |e, _| edge_body(e)),
            }
            // kernel B: decide winners. Out-propagation from fresh winners is
            // kernel A's job next iteration (that is what makes it edge-based),
            // and an In neighbor from an earlier iteration has already marked
            // this vertex Out in kernel A, so the stamp check suffices.
            exec.pfor(n, |vi, _| {
                if rd[vi].load(Ordering::Relaxed) == UNDECIDED
                    && status[vi].load(Ordering::Relaxed) == UNDECIDED
                    && blocked[vi].load(Ordering::Relaxed) != iterations
                {
                    status[vi].store(IN, Ordering::Relaxed);
                }
            });
        } else {
            // vertex-based single kernel
            let vertex_body = |v: NodeId| {
                if rd[v as usize].load(Ordering::Relaxed) != UNDECIDED
                    || status[v as usize].load(Ordering::Relaxed) != UNDECIDED
                {
                    return;
                }
                let mut wins = true;
                for &u in csr.neighbors(v) {
                    let su = rd[u as usize].load(Ordering::Relaxed);
                    if su == IN {
                        if flow == Flow::Pull {
                            status[v as usize].store(OUT, Ordering::Relaxed);
                        }
                        wins = false;
                        break;
                    }
                    if su == UNDECIDED && beats(u, v) {
                        wins = false;
                        if flow == Flow::Push {
                            break;
                        }
                    }
                }
                if wins {
                    status[v as usize].store(IN, Ordering::Relaxed);
                    if flow == Flow::Push {
                        for &u in csr.neighbors(v) {
                            if status[u as usize].load(Ordering::Relaxed) == UNDECIDED {
                                status[u as usize].store(OUT, Ordering::Relaxed);
                            }
                        }
                    }
                }
            };
            match &wl {
                Some((dw, stamps)) => {
                    let current = dw.current();
                    exec.pfor(current.len(), |idx, _| vertex_body(current.get(idx)));
                    let iter = iterations;
                    exec.pfor(current.len(), |idx, _| {
                        let v = current.get(idx);
                        if status[v as usize].load(Ordering::Relaxed) == UNDECIDED
                            && stamps.try_claim(v, iter, critical)
                        {
                            dw.next().push(v);
                        }
                    });
                }
                None => exec.pfor(n, |vi, _| vertex_body(vi as NodeId)),
            }
        }

        if let Some(rd_arr) = &status_read {
            exec.pfor(n, |i, _| {
                rd_arr[i].store(status[i].load(Ordering::Relaxed), Ordering::Relaxed);
            });
        }

        let done = match &wl {
            Some((dw, _)) => {
                dw.swap();
                dw.current().is_empty()
            }
            None => (0..n).all(|i| status[i].load(Ordering::Relaxed) != UNDECIDED),
        };
        if done || n == 0 {
            break;
        }
    }

    let set = (0..n)
        .map(|i| status[i].load(Ordering::Relaxed) == IN)
        .collect();
    (set, iterations as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{serial, GraphInput};
    use indigo_graph::gen::{self, toy};
    use indigo_styles::{enumerate, Algorithm, Model};

    #[test]
    fn all_cpu_mis_variants_compute_the_greedy_set() {
        let graphs = vec![
            toy::path(13),
            toy::star(9),
            toy::complete(6),
            toy::two_triangles(),
            gen::gnp(50, 0.1, 7),
            gen::grid2d(6, 6),
        ];
        for g in graphs {
            let input = GraphInput::new(g);
            let expect = serial::mis(&input.csr, crate::MIS_SEED);
            for model in [Model::Omp, Model::Cpp] {
                for cfg in enumerate::variants(Algorithm::Mis, model) {
                    let exec = CpuExec::new(&cfg, 3);
                    let (got, iters) = run(&cfg, &input, &exec);
                    assert!(iters >= 1);
                    assert_eq!(got, expect, "{} on {}", cfg.name(), input.name());
                }
            }
        }
    }

    #[test]
    fn complete_graph_selects_exactly_one() {
        let input = GraphInput::new(toy::complete(20));
        let cfg = StyleConfig::baseline(Algorithm::Mis, Model::Cpp);
        let exec = CpuExec::new(&cfg, 4);
        let (set, _) = run(&cfg, &input, &exec);
        assert_eq!(set.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn empty_graph_terminates() {
        let input = GraphInput::new(indigo_graph::Csr::from_raw(vec![0], vec![], vec![], "e"));
        let cfg = StyleConfig::baseline(Algorithm::Mis, Model::Omp);
        let exec = CpuExec::new(&cfg, 2);
        let (set, _) = run(&cfg, &input, &exec);
        assert!(set.is_empty());
    }

    #[test]
    fn isolated_vertices_all_join() {
        let input = GraphInput::new(indigo_graph::Csr::from_raw(
            vec![0, 0, 0, 0],
            vec![],
            vec![],
            "i3",
        ));
        let cfg = StyleConfig::baseline(Algorithm::Mis, Model::Cpp);
        let exec = CpuExec::new(&cfg, 2);
        let (set, _) = run(&cfg, &input, &exec);
        assert_eq!(set, vec![true; 3]);
    }
}
