#!/usr/bin/env bash
# Regenerates results/BENCH_cpu_baseline.json: the CPU-baseline kernel
# record the cpu_perf CI gate compares against (DESIGN.md §7.7).
#
# The probe runs the six tuned CPU baselines (bfs, sssp, cc, mis, pr, tc)
# over three suite graphs and records deterministic frontier/bucket
# counters, the steady-state allocation count (pinned at 0), and an
# informational min-of-N kernel wall-clock. Counter fields are measured
# single-threaded (fully deterministic); allocations and wall-clock use the
# fig16 smoke thread count.
#
# Refresh the baseline only when a deliberate algorithm change shifts the
# counters; review the diff — it IS the perf contract.
set -euo pipefail
cd "$(dirname "$0")/.."

# the probe reads telemetry counter deltas, so it needs the feature on
cargo build -q --release -p indigo-bench --bin cpu_perf --features telemetry

target/release/cpu_perf > results/BENCH_cpu_baseline.json
echo "wrote results/BENCH_cpu_baseline.json:"
grep '"name"' results/BENCH_cpu_baseline.json
