//! Cross-crate integration: the §5.17 optimized baselines compute the same
//! answers as the style suite on every input family.

use indigo2::core::{serial, GraphInput, SOURCE};
use indigo2::gpusim::{rtx3090, titan_v};
use indigo2::graph::gen::{self, suite_graph, toy, Scale, SuiteGraph, SUITE_GRAPHS};

#[test]
fn cpu_baselines_match_serial_oracles_on_all_families() {
    for which in SUITE_GRAPHS {
        let input = GraphInput::new(suite_graph(which, Scale::Tiny));
        let g = &input.csr;
        assert_eq!(
            indigo2::baselines::bfs::cpu(&input, 3, SOURCE).0,
            serial::bfs(g, SOURCE),
            "bfs on {which:?}"
        );
        assert_eq!(
            indigo2::baselines::sssp::cpu(&input, 3, SOURCE).0,
            serial::sssp(g, SOURCE),
            "sssp on {which:?}"
        );
        assert_eq!(
            indigo2::baselines::cc::cpu(&input, 3).0,
            serial::cc(g),
            "cc on {which:?}"
        );
        assert_eq!(
            indigo2::baselines::mis::cpu(&input, 3).0,
            serial::mis(g, indigo2::core::MIS_SEED),
            "mis on {which:?}"
        );
        assert_eq!(
            indigo2::baselines::tc::cpu(&input, 3).0,
            serial::triangles(g),
            "tc on {which:?}"
        );
        let pr = indigo2::baselines::pr::cpu(&input, 3).0;
        let expect = serial::pagerank(
            g,
            indigo2::core::PR_DAMPING,
            indigo2::core::PR_EPSILON,
            indigo2::core::PR_MAX_ITERS,
        );
        assert!(
            pr.iter().zip(&expect).all(|(a, b)| (a - b).abs() < 2e-3),
            "pr on {which:?}"
        );
    }
}

#[test]
fn gpu_baselines_match_serial_oracles_on_both_devices() {
    for device in [titan_v(), rtx3090()] {
        for which in SUITE_GRAPHS {
            let input = GraphInput::new(suite_graph(which, Scale::Tiny));
            let g = &input.csr;
            assert_eq!(
                indigo2::baselines::bfs::gpu(&input, device, SOURCE).0,
                serial::bfs(g, SOURCE),
                "bfs on {which:?} / {}",
                device.name
            );
            assert_eq!(
                indigo2::baselines::sssp::gpu(&input, device, SOURCE).0,
                serial::sssp(g, SOURCE),
                "sssp on {which:?} / {}",
                device.name
            );
            assert_eq!(
                indigo2::baselines::cc::gpu(&input, device).0,
                serial::cc(g),
                "cc on {which:?} / {}",
                device.name
            );
            assert_eq!(
                indigo2::baselines::tc::gpu(&input, device).0,
                serial::triangles(g),
                "tc on {which:?} / {}",
                device.name
            );
        }
    }
}

/// Every generator family in `crates/graph/src/gen`, swept with multiple
/// BFS/SSSP sources. The discrete kernels (bfs, sssp, cc, mis, tc) must be
/// *bit-identical* to the serial oracles — their answers are unique
/// fixpoints, so the tuned frontier/bucket machinery may not change a
/// single word of output. PR is iterative floating point and compared with
/// the usual tolerance.
#[test]
fn cpu_baselines_bit_identical_across_generators_and_sources() {
    let battery = [
        gen::gnp(400, 0.02, 7),
        gen::rmat(9, 6, 11),
        gen::preferential_attachment(400, 4, 3),
        gen::clique_overlap(350, 2.0, 5),
        gen::road(20, 14, 9),
        gen::grid2d(18, 13),
        toy::path(64),
        toy::cycle(48),
        toy::star(40),
        toy::complete(12),
        toy::two_triangles(),
        toy::weighted_diamond(),
    ];
    for g in battery {
        let input = GraphInput::new(g);
        let g = &input.csr;
        let n = g.num_nodes() as u32;
        // source-parameterized kernels: first, middle, and last vertex
        for source in [0, n / 2, n - 1] {
            assert_eq!(
                indigo2::baselines::bfs::cpu(&input, 3, source).0,
                serial::bfs(g, source),
                "bfs on {} from {source}",
                input.name()
            );
            assert_eq!(
                indigo2::baselines::sssp::cpu(&input, 3, source).0,
                serial::sssp(g, source),
                "sssp on {} from {source}",
                input.name()
            );
        }
        // source-independent kernels
        assert_eq!(
            indigo2::baselines::cc::cpu(&input, 3).0,
            serial::cc(g),
            "cc on {}",
            input.name()
        );
        assert_eq!(
            indigo2::baselines::mis::cpu(&input, 3).0,
            serial::mis(g, indigo2::core::MIS_SEED),
            "mis on {}",
            input.name()
        );
        assert_eq!(
            indigo2::baselines::tc::cpu(&input, 3).0,
            serial::triangles(g),
            "tc on {}",
            input.name()
        );
        let pr = indigo2::baselines::pr::cpu(&input, 3).0;
        let expect = serial::pagerank(
            g,
            indigo2::core::PR_DAMPING,
            indigo2::core::PR_EPSILON,
            indigo2::core::PR_MAX_ITERS,
        );
        assert!(
            pr.iter().zip(&expect).all(|(a, b)| (a - b).abs() < 2e-3),
            "pr on {}",
            input.name()
        );
    }
}

/// The optimized baselines should generally beat the *worst* style variant
/// by a wide margin in simulated GPU time — the premise of Fig 16.
#[test]
fn gpu_sssp_baseline_beats_worst_style_variant() {
    let input = GraphInput::new(suite_graph(SuiteGraph::RoadMap, Scale::Tiny));
    let dg = indigo2::core::gpu::DeviceGraph::upload(&input);
    let device = rtx3090();
    let (_, base_secs) = indigo2::baselines::sssp::gpu(&input, device, SOURCE);
    let worst = indigo2::styles::enumerate::variants(
        indigo2::styles::Algorithm::Sssp,
        indigo2::styles::Model::Cuda,
    )
    .iter()
    .map(|cfg| indigo2::core::run_gpu(cfg, &dg, device).secs)
    .fold(0.0f64, f64::max);
    assert!(
        base_secs < worst,
        "baseline {base_secs} should beat the worst variant {worst}"
    );
}
