//! # indigo-gpusim
//!
//! A deterministic GPU *execution-model simulator* standing in for the two
//! CUDA test systems of the paper (TITAN V and RTX 3090, §4.3).
//!
//! ## Why a simulator
//!
//! The paper's GPU findings are statements about the *relative* cost of
//! parallelization/implementation styles: warp vs thread granularity under
//! skewed degree distributions (§5.8), memory coalescing under cyclic
//! assignment (§2.12), the default-`seq_cst`/system-scope penalty of
//! `cuda::atomic` (§5.1), global vs block vs warp-shuffle reductions (§5.9),
//! and persistent-thread launch overheads (§5.7). Those are all mechanisms
//! of the CUDA *execution model*, not of any one chip. This crate executes
//! kernels functionally on the host — bit-exact, race-free, reproducible —
//! while accounting simulated cycles through a calibrated cost model of
//! exactly those mechanisms:
//!
//! * warps execute their 32 lanes in lockstep; a warp pays for its longest
//!   lane (divergence),
//! * global memory traffic is coalesced into 128-byte segments per lockstep
//!   step ([`cost::StepTable`]),
//! * atomics pay per distinct address touched by the warp in a step, with
//!   cheap hardware aggregation for same-address adds,
//! * `cuda::atomic` with default settings multiplies every access to the
//!   declared array by a device-specific penalty ([`device::Device`]),
//! * blocks are scheduled onto SMs greedily; an SM overlaps the warps it
//!   hosts up to a fixed parallelism, so one monstrous warp still gates the
//!   kernel (load imbalance),
//! * reduction styles (§2.10.1) differ only in *where* their synchronization
//!   cycles are spent, exactly as in Listings 10a–10c.
//!
//! Simulated wall-clock is `cycles / clock`; the harness converts it to the
//! paper's giga-edges-per-second metric. Absolute numbers are meaningless —
//! the *shape* of style ratios is the reproduction target (see DESIGN.md §1).

pub mod ablation;
pub mod buffer;
pub mod cost;
pub mod device;
pub mod fault;
pub mod launch;
pub mod pool;

pub use buffer::{BufKind, GpuBuf, GpuBufF32};
pub use device::{rtx3090, titan_v, CostModel, Device, GPUS};
pub use fault::{FaultKind, FaultPlan};
pub use launch::{Assign, LaneCtx, ReduceStyle, Sim};

/// Re-exported warp width (CUDA's fixed 32).
pub const WARP_SIZE: usize = 32;

/// Version stamp of the calibrated cost model. Bump whenever a
/// [`CostModel`] constant or a pricing rule changes: the harness folds this
/// into every cell fingerprint, so stale checkpoint journals from an older
/// calibration can never be resumed into a newer run (DESIGN.md §7.3).
pub const COST_MODEL_VERSION: u32 = 1;
