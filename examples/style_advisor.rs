//! The §5.16 programming guidelines as an executable advisor.
//!
//! Analyzes a graph's structural properties, prints the style
//! recommendations the paper's guidelines imply, then *checks* them by
//! racing a handful of candidate variants and reporting the winner.
//!
//! ```text
//! cargo run --release --example style_advisor [-- road|grid|social|rmat|copapers]
//! ```

use indigo_core::{run_gpu, GraphInput};
use indigo_gpusim::rtx3090;
use indigo_graph::gen::{suite_graph, Scale, SuiteGraph};
use indigo_graph::stats::GraphStats;
use indigo_styles::{enumerate, Algorithm, Model};

fn main() {
    let which = match std::env::args().nth(1).as_deref() {
        Some("grid") => SuiteGraph::Grid2d,
        Some("social") => SuiteGraph::SocialNetwork,
        Some("rmat") => SuiteGraph::Rmat,
        Some("copapers") => SuiteGraph::CoPapers,
        _ => SuiteGraph::RoadMap,
    };
    let graph = suite_graph(which, Scale::Small);
    let stats = GraphStats::compute(&graph);
    println!("analyzing {} ({} family)", graph.name(), which.label());
    println!(
        "  d_avg {:.1}, d_max {}, {:.1}% of vertices with degree >= 32, diameter >= {}",
        stats.avg_degree, stats.max_degree, stats.pct_deg_ge32, stats.diameter_lb
    );

    // the paper's guidelines (§5.16), conditioned on the measured stats
    println!("\nguideline-based recommendations (§5.16):");
    println!("  - use the non-deterministic and push styles");
    println!("  - avoid default CudaAtomic and critical sections");
    println!("  - prefer non-persistent kernels");
    if stats.pct_deg_ge32 > 10.0 || stats.max_degree > 256 {
        println!("  - high-degree input: prefer WARP granularity");
    } else {
        println!("  - uniform low-degree input: prefer THREAD granularity");
    }
    if stats.diameter_lb > 50 {
        println!("  - high diameter: prefer DATA-DRIVEN worklists for BFS/SSSP");
    } else {
        println!("  - low diameter: topology-driven is competitive");
    }

    // empirical check: race all CUDA SSSP variants on the simulator
    println!("\nracing all CUDA SSSP variants on the simulated RTX 3090...");
    let input = GraphInput::new(graph);
    let dg = indigo_core::gpu::DeviceGraph::upload(&input);
    let mut results: Vec<(f64, String)> = enumerate::variants(Algorithm::Sssp, Model::Cuda)
        .into_iter()
        .map(|cfg| {
            let r = run_gpu(&cfg, &dg, rtx3090());
            (r.gigaedges_per_sec(input.num_edges()), cfg.name())
        })
        .collect();
    results.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!("top 5 of {} variants:", results.len());
    for (geps, name) in results.iter().take(5) {
        println!("  {geps:>8.3} GE/s  {name}");
    }
    println!("bottom 3:");
    for (geps, name) in results.iter().rev().take(3) {
        println!("  {geps:>8.3} GE/s  {name}");
    }
    let spread = results.first().unwrap().0 / results.last().unwrap().0;
    println!(
        "\nbest/worst spread: {spread:.0}x — \"choosing the wrong style can \
         cost orders of magnitude\" (paper abstract)"
    );
}
