//! chrome://tracing exporter.
//!
//! Converts a recorded trace ([`TraceEvent`]s) into the Trace Event Format
//! JSON array that `chrome://tracing` and Perfetto load directly: spans
//! become complete events (`"ph": "X"`) with microsecond `ts`/`dur`,
//! instants become `"ph": "i"` with thread scope. Always compiled —
//! exporting must work on traces recorded by other builds.

use crate::event::{json_str, TraceEvent};

/// Renders events as a chrome://tracing JSON array (one event per line for
/// diffability). The whole trace is shown as process 1; `tid` carries the
/// emitting worker.
#[must_use]
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("[\n");
    out.push_str(
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
         \"args\": {\"name\": \"indigo-exp\"}}",
    );
    for ev in events {
        out.push_str(",\n");
        out.push_str(&chrome_event(ev));
    }
    out.push_str("\n]\n");
    out
}

fn chrome_event(ev: &TraceEvent) -> String {
    let mut s = String::from("{");
    s.push_str(&format!("\"name\": {}, ", json_str(&ev.name)));
    s.push_str(&format!("\"cat\": {}, ", json_str(&ev.kind)));
    if ev.dur_us > 0 {
        s.push_str(&format!(
            "\"ph\": \"X\", \"ts\": {}, \"dur\": {}, ",
            ev.ts_us, ev.dur_us
        ));
    } else {
        s.push_str(&format!(
            "\"ph\": \"i\", \"s\": \"t\", \"ts\": {}, ",
            ev.ts_us
        ));
    }
    s.push_str(&format!("\"pid\": 1, \"tid\": {}, \"args\": {{", ev.tid));
    for (i, (k, v)) in ev.args.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&json_str(k));
        s.push_str(": ");
        s.push_str(&json_str(v));
    }
    s.push_str("}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_instants_render_with_correct_phases() {
        let events = vec![
            TraceEvent::span("phase", "gpu-sim", 100, 5000).with_arg("cells", "12"),
            TraceEvent::instant("watchdog-fire", "bfs|rmat", 4200).with_tid(3),
        ];
        let json = to_chrome_json(&events);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"ph\": \"X\", \"ts\": 100, \"dur\": 5000"));
        assert!(json.contains("\"ph\": \"i\", \"s\": \"t\", \"ts\": 4200"));
        assert!(json.contains("\"tid\": 3"));
        assert!(json.contains("\"cells\": \"12\""));
        // exactly one trailing comma structure: N events + metadata
        assert_eq!(json.matches("\"ph\"").count(), 3);
    }

    #[test]
    fn empty_trace_is_still_a_valid_array() {
        let json = to_chrome_json(&[]);
        assert!(json.contains("process_name"));
        assert!(json.trim_end().ends_with(']'));
    }
}
