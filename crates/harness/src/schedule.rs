//! Scheduling options and progress events for the measurement matrix.
//!
//! The suite's cells split into two classes with opposite needs:
//!
//! * **GPU-sim cells** report *simulated* cycles, which are independent of
//!   host load, so any number can run concurrently without perturbing each
//!   other's results (the simulator itself is bit-deterministic, see
//!   `indigo-gpusim`'s parallel-equivalence gate).
//! * **CPU wall-clock cells** time real execution, so they must run
//!   *exclusively* — never alongside other measurement work that would
//!   steal cores and skew the medians.
//!
//! [`RunOptions`] sizes the host thread pool for the first class;
//! `RunPlan::run_with` fans GPU cells across it, then runs the CPU cells
//! serially. [`ProgressEvent`] replaces the old bare `(done, total)`
//! callback with phase-structured reporting so front-ends can show
//! per-phase rates and ETAs.

use std::num::NonZeroUsize;

/// Knobs for one matrix run.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Host threads measuring GPU-sim cells concurrently (min 1). CPU
    /// wall-clock cells always run exclusively regardless of this setting.
    pub jobs: usize,
    /// Host threads inside each GPU-sim launch that carries the
    /// `deterministic_parallel` capability (min 1). Multiplies with `jobs`;
    /// useful when the matrix slice is small but individual graphs are
    /// large.
    pub sim_workers: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            jobs: 1,
            sim_workers: 1,
        }
    }
}

impl RunOptions {
    /// One job per available hardware thread, single-threaded launches.
    pub fn auto() -> Self {
        RunOptions {
            jobs: default_jobs(),
            sim_workers: 1,
        }
    }

    /// Sets the measurement-cell thread count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Sets the per-launch simulator worker count.
    pub fn with_sim_workers(mut self, workers: usize) -> Self {
        self.sim_workers = workers.max(1);
        self
    }
}

/// The host's available parallelism (1 if unknown).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// The phases of one matrix run, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RunPhase {
    /// Graph generation + device upload, one unit per input graph.
    Prepare,
    /// GPU-sim measurement cells (parallel across `jobs` threads).
    GpuSim,
    /// CPU wall-clock measurement cells (exclusive, serial).
    CpuWall,
}

impl RunPhase {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            RunPhase::Prepare => "prepare",
            RunPhase::GpuSim => "gpu-sim",
            RunPhase::CpuWall => "cpu-wall",
        }
    }
}

/// Progress callback payload for `RunPlan::run_with`.
#[derive(Clone, Copy, Debug)]
pub enum ProgressEvent {
    /// A phase is starting with `total` work units.
    PhaseStart {
        /// Which phase.
        phase: RunPhase,
        /// Units the phase will process (may be 0).
        total: usize,
    },
    /// Progress within a phase. Parallel phases coalesce: `done` is the
    /// latest completed count, not necessarily `previous + 1`.
    Cell {
        /// Which phase.
        phase: RunPhase,
        /// Units completed so far.
        done: usize,
        /// Units the phase will process.
        total: usize,
    },
    /// A phase finished; `secs` is its wall-clock duration.
    PhaseEnd {
        /// Which phase.
        phase: RunPhase,
        /// Units processed.
        total: usize,
        /// Wall-clock seconds spent in the phase.
        secs: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_clamp_to_one() {
        let o = RunOptions::default().with_jobs(0).with_sim_workers(0);
        assert_eq!(o.jobs, 1);
        assert_eq!(o.sim_workers, 1);
        let o = RunOptions::auto();
        assert!(o.jobs >= 1);
    }

    #[test]
    fn phase_labels_distinct() {
        let labels = [
            RunPhase::Prepare.label(),
            RunPhase::GpuSim.label(),
            RunPhase::CpuWall.label(),
        ];
        assert_eq!(
            labels
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            labels.len()
        );
    }
}
